"""Cluster-trace replay: external CSV rows → :class:`SubmissionTrace`.

Public cluster traces (Google's ClusterData job events, Alibaba's
``batch_task`` tables) are CSVs of *(timestamp, submitting entity, ...)*
rows.  :func:`read_cluster_trace` adapts such rows into the simulator's
submission-trace format:

* the distinct submitting entities (users / job groups) are mapped onto
  the experiment's application ids — round-robin in order of first
  appearance, so the mapping is a pure function of the trace;
* timestamps are shifted to start at zero and rescaled (public traces
  use microseconds or span days; ``time_scale`` compresses them into a
  simulable horizon);
* per-application job indices are assigned in submission order, giving a
  trace that satisfies the runner's replay invariants by construction.

The result replays through :func:`repro.experiments.runner.run_experiment`
identically for every compared manager — the paper's common-schedule
methodology, applied to a real trace instead of a synthetic one.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.workload.trace import SubmissionEvent, SubmissionTrace

__all__ = [
    "TraceColumns",
    "GOOGLE_COLUMNS",
    "ALIBABA_COLUMNS",
    "read_cluster_trace",
]


@dataclass(frozen=True)
class TraceColumns:
    """Which CSV columns carry the submission time and the entity."""

    time: str = "time"
    entity: str = "user"


#: Google ClusterData v2 job-events table (SUBMIT rows pre-filtered).
GOOGLE_COLUMNS = TraceColumns(time="time", entity="user")
#: Alibaba cluster-trace v2018 ``batch_task`` table.
ALIBABA_COLUMNS = TraceColumns(time="start_time", entity="job_name")


def read_cluster_trace(
    source: Union[str, Path, Iterable[str]],
    app_ids: Sequence[str],
    *,
    columns: TraceColumns = TraceColumns(),
    time_scale: float = 1.0,
    max_jobs: Optional[int] = None,
    max_jobs_per_app: Optional[int] = None,
) -> SubmissionTrace:
    """Adapt cluster-trace CSV rows into a replayable submission trace.

    ``source`` is a path or an iterable of CSV lines (header required).
    ``time_scale`` multiplies the shifted timestamps (e.g. ``1e-6`` for
    microsecond traces); ``max_jobs`` truncates the trace after that many
    rows *in time order*, and ``max_jobs_per_app`` caps each mapped
    application's job count (rows beyond the cap are dropped — the knob
    that turns a million-row trace into a CI-sized replay).
    """
    if not app_ids:
        raise ConfigurationError("read_cluster_trace needs at least one app id")
    if len(set(app_ids)) != len(app_ids):
        raise ConfigurationError(f"duplicate app ids in {list(app_ids)!r}")
    if time_scale <= 0:
        raise ConfigurationError(f"time_scale must be positive, got {time_scale}")
    if max_jobs is not None and max_jobs < 1:
        raise ConfigurationError(f"max_jobs must be >= 1, got {max_jobs}")
    if max_jobs_per_app is not None and max_jobs_per_app < 1:
        raise ConfigurationError(
            f"max_jobs_per_app must be >= 1, got {max_jobs_per_app}"
        )

    if isinstance(source, (str, Path)):
        with open(source, newline="") as fh:
            rows = _parse_rows(fh, columns)
    else:
        rows = _parse_rows(source, columns)
    if not rows:
        raise ConfigurationError("cluster trace contains no rows")

    # Stable order: by timestamp, then input order (Python sort is stable).
    rows.sort(key=lambda r: r[0])
    t0 = rows[0][0]

    # Entities → app buckets, round-robin by first appearance in time order.
    bucket_of: Dict[str, str] = {}
    next_bucket = 0
    counts: Dict[str, int] = {app: 0 for app in app_ids}
    events: List[SubmissionEvent] = []
    for raw_time, entity in rows:
        if max_jobs is not None and len(events) >= max_jobs:
            break
        app = bucket_of.get(entity)
        if app is None:
            app = app_ids[next_bucket % len(app_ids)]
            bucket_of[entity] = app
            next_bucket += 1
        if max_jobs_per_app is not None and counts[app] >= max_jobs_per_app:
            continue
        events.append(
            SubmissionEvent((raw_time - t0) * time_scale, app, counts[app])
        )
        counts[app] += 1
    if not events:
        raise ConfigurationError("cluster trace truncated to zero jobs")
    return SubmissionTrace(events).validate()


def _parse_rows(
    lines: Iterable[str], columns: TraceColumns
) -> List[tuple]:
    """(timestamp, entity) pairs from DictReader rows; strict on malformed."""
    reader = csv.DictReader(lines)
    if reader.fieldnames is None:
        raise ConfigurationError("cluster trace CSV has no header row")
    missing = {columns.time, columns.entity} - set(reader.fieldnames)
    if missing:
        raise ConfigurationError(
            f"cluster trace CSV is missing columns {sorted(missing)} "
            f"(header: {reader.fieldnames})"
        )
    rows: List[tuple] = []
    for lineno, row in enumerate(reader, start=2):
        time_raw = row.get(columns.time)
        entity = row.get(columns.entity)
        if time_raw is None or entity is None or not str(entity).strip():
            raise ConfigurationError(
                f"cluster trace line {lineno}: missing time/entity in {row!r}"
            )
        try:
            timestamp = float(time_raw)
        except ValueError:
            raise ConfigurationError(
                f"cluster trace line {lineno}: bad timestamp {time_raw!r}"
            ) from None
        if timestamp < 0:
            raise ConfigurationError(
                f"cluster trace line {lineno}: negative timestamp {timestamp}"
            )
        rows.append((timestamp, str(entity).strip()))
    return rows
