"""Task: the unit of execution.

An **input task** reads one HDFS block (locally or over the network) and
then computes; a **shuffle task** fetches intermediate data from upstream
stages and computes.  Only input tasks participate in locality accounting
(§III-A: "we only care about the locality for input tasks").

Runtime fields (submission, start, finish, executor, locality outcome) are
filled in by the application driver as the simulation progresses; the
metrics collector reads them afterwards.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.hdfs.blocks import Block

__all__ = ["Task", "TaskKind"]


class TaskKind(enum.Enum):
    """What a task reads."""

    INPUT = "input"  # one HDFS block
    SHUFFLE = "shuffle"  # upstream stage output


class Task:
    """One task of one stage of one job."""

    __slots__ = (
        "task_id",
        "job_id",
        "app_id",
        "stage_index",
        "kind",
        "block",
        "cpu_time",
        "shuffle_bytes",
        "submitted_at",
        "started_at",
        "finished_at",
        "executor_id",
        "node_id",
        "was_local",
        "locality_level",
        "read_time",
        "cancelled",
    )

    def __init__(
        self,
        task_id: str,
        *,
        job_id: str,
        app_id: str,
        stage_index: int,
        kind: TaskKind,
        cpu_time: float,
        block: Optional[Block] = None,
        shuffle_bytes: float = 0.0,
    ):
        if cpu_time < 0:
            raise ValueError(f"{task_id}: cpu_time must be >= 0, got {cpu_time}")
        if kind is TaskKind.INPUT and block is None:
            raise ValueError(f"{task_id}: input tasks require a block")
        if kind is TaskKind.SHUFFLE and block is not None:
            raise ValueError(f"{task_id}: shuffle tasks must not carry a block")
        if shuffle_bytes < 0:
            raise ValueError(f"{task_id}: shuffle_bytes must be >= 0")
        self.task_id = task_id
        self.job_id = job_id
        self.app_id = app_id
        self.stage_index = stage_index
        self.kind = kind
        self.block = block
        self.cpu_time = cpu_time
        self.shuffle_bytes = shuffle_bytes
        # Runtime outcome, written by the driver:
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.executor_id: Optional[str] = None
        self.node_id: Optional[str] = None
        self.was_local: Optional[bool] = None
        #: "node" / "rack" / "any" once the task ran (input tasks only).
        self.locality_level: Optional[str] = None
        self.read_time: Optional[float] = None
        #: True when a KMN quorum barrier cancelled this surplus task.
        self.cancelled: bool = False

    # ------------------------------------------------------------- inspection
    @property
    def is_input(self) -> bool:
        """True for first-stage tasks reading an HDFS block."""
        return self.kind is TaskKind.INPUT

    @property
    def finished(self) -> bool:
        """True once the driver recorded completion."""
        return self.finished_at is not None

    @property
    def duration(self) -> Optional[float]:
        """Wall-clock task time (None until finished)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def scheduler_delay(self) -> Optional[float]:
        """Submission-to-launch latency — the paper's Fig. 10 metric."""
        if self.submitted_at is None or self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def reset_runtime(self) -> None:
        """Clear runtime fields so the same workload can be replayed."""
        self.submitted_at = None
        self.started_at = None
        self.finished_at = None
        self.executor_id = None
        self.node_id = None
        self.was_local = None
        self.locality_level = None
        self.read_time = None
        self.cancelled = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        blk = f" block={self.block.block_id}" if self.block else ""
        return f"<Task {self.task_id} {self.kind.value}{blk}>"
