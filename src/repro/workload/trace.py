"""Submission traces: who submits which job when.

§VI-A: *"We generate a common job submission schedule that is shared by all
the experiments to minimize the influence of random factors. The
distribution of inter-arrival times is roughly exponential with a mean of
14 seconds in accordance with the Facebook trace. [...] we register four
applications [...] and submit 30 jobs with an independent submission
schedule to each application."*

:func:`common_schedule` reproduces exactly that: per-application independent
exponential arrival processes, merged into one global, time-ordered trace
that every compared policy replays identically.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.common.errors import ConfigurationError

__all__ = ["SubmissionEvent", "SubmissionTrace", "common_schedule"]

#: Column order of the portable CSV projection.
_CSV_FIELDS = ("time", "app_id", "job_index")


@dataclass(frozen=True)
class SubmissionEvent:
    """One job submission: which app submits its n-th job at what time."""

    time: float
    app_id: str
    job_index: int


class SubmissionTrace:
    """A time-ordered sequence of submission events."""

    def __init__(self, events: Sequence[SubmissionEvent]):
        self.events: List[SubmissionEvent] = sorted(
            events, key=lambda e: (e.time, e.app_id, e.job_index)
        )
        for e in self.events:
            if e.time < 0:
                raise ConfigurationError(f"negative submission time in {e}")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last submission."""
        return self.events[-1].time if self.events else 0.0

    def per_app(self) -> Dict[str, List[SubmissionEvent]]:
        """Events grouped by application (each group time-ordered)."""
        groups: Dict[str, List[SubmissionEvent]] = {}
        for event in self.events:
            groups.setdefault(event.app_id, []).append(event)
        return groups

    def to_records(self) -> List[dict]:
        """JSON-serialisable projection (for trace export)."""
        return [
            {"time": e.time, "app_id": e.app_id, "job_index": e.job_index}
            for e in self.events
        ]

    @staticmethod
    def from_records(records) -> "SubmissionTrace":
        """Rebuild a trace from :meth:`to_records` output."""
        return SubmissionTrace(
            [
                SubmissionEvent(float(r["time"]), str(r["app_id"]), int(r["job_index"]))
                for r in records
            ]
        )

    # ------------------------------------------------------------------- CSV
    def validate(self) -> "SubmissionTrace":
        """Check replay-fixture invariants; returns self or raises.

        Every application's job indices must be contiguous from zero and
        *monotone with time* — job ``k`` may not be submitted after job
        ``k+1``.  The experiment runner builds one job per event in trace
        order, so a violation would silently shuffle job identities
        between compared policies.
        """
        for app_id, events in self.per_app().items():
            # per_app() groups in global (time-sorted) order.
            indices = [e.job_index for e in events]
            if indices != list(range(len(indices))):
                raise ConfigurationError(
                    f"{app_id}: job indices must be contiguous from 0 and "
                    f"monotone with submission time, got {indices}"
                )
        return self

    def to_csv(self) -> str:
        """Portable CSV projection (``time,app_id,job_index`` header)."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(_CSV_FIELDS)
        for e in self.events:
            writer.writerow([repr(e.time), e.app_id, e.job_index])
        return buf.getvalue()

    @staticmethod
    def from_csv(source: Union[str, Iterable[str]]) -> "SubmissionTrace":
        """Parse :meth:`to_csv` output (a string or an iterable of lines).

        Loading validates the replay invariants (see :meth:`validate`), so
        a hand-edited or truncated fixture fails loudly at load time, not
        as a subtle mid-experiment job mix-up.
        """
        lines = source.splitlines() if isinstance(source, str) else source
        reader = csv.DictReader(lines)
        if reader.fieldnames is None or tuple(reader.fieldnames) != _CSV_FIELDS:
            raise ConfigurationError(
                f"trace CSV must start with header {','.join(_CSV_FIELDS)!r}, "
                f"got {reader.fieldnames}"
            )
        events: List[SubmissionEvent] = []
        for lineno, row in enumerate(reader, start=2):
            try:
                events.append(
                    SubmissionEvent(
                        float(row["time"]), str(row["app_id"]), int(row["job_index"])
                    )
                )
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"trace CSV line {lineno}: {row!r}: {exc}"
                ) from None
        return SubmissionTrace(events).validate()


def common_schedule(
    app_ids: Sequence[str],
    jobs_per_app: int,
    rng: np.random.Generator,
    *,
    mean_interarrival: float = 14.0,
) -> SubmissionTrace:
    """The paper's common schedule: independent Poisson streams per app.

    Each application's inter-arrival gaps are i.i.d. exponential with the
    given mean; the first job of each app arrives after one gap (the cluster
    does not start saturated).
    """
    if jobs_per_app < 1:
        raise ConfigurationError(f"jobs_per_app must be >= 1, got {jobs_per_app}")
    if mean_interarrival <= 0:
        raise ConfigurationError(
            f"mean_interarrival must be positive, got {mean_interarrival}"
        )
    if len(set(app_ids)) != len(app_ids):
        raise ConfigurationError(f"duplicate app ids in {list(app_ids)!r}")
    events: List[SubmissionEvent] = []
    for app_id in app_ids:
        gaps = rng.exponential(mean_interarrival, size=jobs_per_app)
        times = np.cumsum(gaps)
        events.extend(
            SubmissionEvent(float(t), app_id, i) for i, t in enumerate(times)
        )
    return SubmissionTrace(events)
