"""Closed-form expectations: exactness, Monte-Carlo agreement, simulator
convergence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expectations import (
    expected_node_coverage,
    expected_random_allocation_locality,
    prob_block_covered,
    uncontended_read_time,
)
from repro.common.errors import ConfigurationError


class TestProbBlockCovered:
    def test_trivial_cases(self):
        assert prob_block_covered(10, 0, 3) == 0.0
        assert prob_block_covered(10, 10, 3) == 1.0

    def test_pigeonhole(self):
        # 8 uncovered nodes cannot host 9 replicas: coverage certain.
        assert prob_block_covered(10, 2, 9) == 1.0

    def test_single_replica_is_coverage_fraction(self):
        assert prob_block_covered(10, 4, 1) == pytest.approx(0.4)

    def test_exact_small_case(self):
        # N=4, c=2, r=2: uncovered pairs C(2,2)=1 of C(4,2)=6 -> 5/6.
        assert prob_block_covered(4, 2, 2) == pytest.approx(5 / 6)

    def test_monotone_in_coverage(self):
        probs = [prob_block_covered(50, c, 3) for c in range(0, 51, 5)]
        assert probs == sorted(probs)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(0)
        n, c, r = 20, 7, 3
        covered = set(range(c))
        hits = 0
        trials = 20000
        for _ in range(trials):
            replicas = rng.choice(n, size=r, replace=False)
            hits += bool(covered.intersection(replicas))
        assert hits / trials == pytest.approx(prob_block_covered(n, c, r), abs=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            prob_block_covered(10, 11, 3)
        with pytest.raises(ConfigurationError):
            prob_block_covered(10, 5, 0)

    def test_replication_beyond_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            prob_block_covered(10, 5, 11)
        with pytest.raises(ConfigurationError):
            prob_block_covered(10, 5, -1)

    def test_single_node_cluster(self):
        # One node, one replica: coverage is all-or-nothing.
        assert prob_block_covered(1, 0, 1) == 0.0
        assert prob_block_covered(1, 1, 1) == 1.0

    def test_full_replication_always_covered(self):
        # r = N puts a replica everywhere: any nonzero coverage hits.
        assert prob_block_covered(8, 1, 8) == 1.0
        assert prob_block_covered(8, 0, 8) == 0.0


class TestProbBlockCoveredProperties:
    """Hypothesis: the closed form behaves like a probability everywhere."""

    @given(
        num_nodes=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounded_in_unit_interval(self, num_nodes, data):
        covered = data.draw(st.integers(0, num_nodes), label="covered")
        replication = data.draw(st.integers(1, num_nodes), label="replication")
        p = prob_block_covered(num_nodes, covered, replication)
        assert 0.0 <= p <= 1.0

    @given(
        num_nodes=st.integers(min_value=2, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_covered_nodes(self, num_nodes, data):
        replication = data.draw(st.integers(1, num_nodes), label="replication")
        covered = data.draw(st.integers(0, num_nodes - 1), label="covered")
        assert prob_block_covered(
            num_nodes, covered, replication
        ) <= prob_block_covered(num_nodes, covered + 1, replication)

    @given(
        num_nodes=st.integers(min_value=2, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_replication(self, num_nodes, data):
        covered = data.draw(st.integers(0, num_nodes), label="covered")
        replication = data.draw(st.integers(1, num_nodes - 1), label="replication")
        assert prob_block_covered(
            num_nodes, covered, replication
        ) <= prob_block_covered(num_nodes, covered, replication + 1)

    @given(
        num_nodes=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_edges_are_exact(self, num_nodes, data):
        replication = data.draw(st.integers(1, num_nodes), label="replication")
        assert prob_block_covered(num_nodes, 0, replication) == 0.0
        assert prob_block_covered(num_nodes, num_nodes, replication) == 1.0


class TestExpectedNodeCoverage:
    def test_picking_everything_covers_everything(self):
        assert expected_node_coverage(10, 2, 20) == 10.0

    def test_picking_nothing_covers_nothing(self):
        assert expected_node_coverage(10, 2, 0) == 0.0

    def test_single_executor_per_node(self):
        # e=1: picking q of N executors covers exactly q nodes.
        assert expected_node_coverage(10, 1, 4) == pytest.approx(4.0)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(1)
        n, e, q = 12, 2, 8
        total = n * e
        samples = []
        for _ in range(20000):
            picks = rng.choice(total, size=q, replace=False)
            samples.append(len({p // e for p in picks}))
        assert np.mean(samples) == pytest.approx(
            expected_node_coverage(n, e, q), abs=0.05
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            expected_node_coverage(10, 2, 21)


class TestSimulatorConvergence:
    def test_baseline_locality_bounded_by_closed_form(self):
        """Measured standalone locality never beats the coverage bound."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            manager="standalone", workload="wordcount", num_nodes=20,
            num_apps=2, jobs_per_app=3, seed=2,
        )
        result = run_experiment(config)
        bound = expected_random_allocation_locality(
            num_nodes=config.num_nodes,
            executors_per_node=config.executors_per_node,
            quota=config.num_nodes * config.executors_per_node // config.num_apps,
            replication=config.replication,
        )
        # Allow a small epsilon: coverage is randomised per run while the
        # bound uses the rounded expectation.
        assert result.metrics.locality_mean <= bound + 0.05

    def test_baseline_locality_approaches_bound_under_light_load(self):
        """With long delay waits and few jobs, the bound is nearly achieved."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            manager="standalone", workload="pagerank", num_nodes=20,
            num_apps=2, jobs_per_app=2, seed=3, delay_wait=30.0,
            mean_interarrival=60.0,
        )
        result = run_experiment(config)
        bound = expected_random_allocation_locality(
            num_nodes=20, executors_per_node=2, quota=20, replication=3
        )
        assert result.metrics.locality_mean >= bound - 0.15


class TestUncontendedReadTime:
    def test_bottleneck_is_min_nic(self):
        assert uncontended_read_time(100.0, 10.0, 40.0) == pytest.approx(10.0)
        assert uncontended_read_time(100.0, 40.0, 10.0) == pytest.approx(10.0)

    def test_matches_fabric(self, sim):
        from repro.network.fabric import NetworkFabric

        fabric = NetworkFabric(sim)
        fabric.add_node("a", uplink=8.0, downlink=100.0)
        fabric.add_node("b", uplink=100.0, downlink=50.0)
        transfer = fabric.start_transfer("a", "b", size=64.0)
        sim.run()
        assert transfer.duration == pytest.approx(
            uncontended_read_time(64.0, 8.0, 50.0)
        )

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            uncontended_read_time(-1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            uncontended_read_time(1.0, 0.0, 1.0)
