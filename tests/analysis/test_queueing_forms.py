"""Closed-form queueing formulas: exact values, identities, guard rails."""

import pytest

from repro.analysis.queueing import (
    erlang_c,
    mm1_mean_number_in_system,
    mm1_mean_queue_length,
    mm1_mean_sojourn,
    mm1_mean_wait,
    mmc_mean_number_in_system,
    mmc_mean_sojourn,
    mmc_mean_wait,
    priority_mm1_waits,
    utilization,
)
from repro.common.errors import ConfigurationError


class TestMM1:
    def test_textbook_point(self):
        # λ=0.5, μ=1: ρ=0.5, Wq = 0.5/0.5 = 1, W = 2, L = 1, Lq = 0.5.
        assert mm1_mean_wait(0.5, 1.0) == pytest.approx(1.0)
        assert mm1_mean_sojourn(0.5, 1.0) == pytest.approx(2.0)
        assert mm1_mean_number_in_system(0.5, 1.0) == pytest.approx(1.0)
        assert mm1_mean_queue_length(0.5, 1.0) == pytest.approx(0.5)

    def test_littles_law_identities(self):
        lam, mu = 0.7, 1.3
        assert mm1_mean_number_in_system(lam, mu) == pytest.approx(
            lam * mm1_mean_sojourn(lam, mu)
        )
        assert mm1_mean_queue_length(lam, mu) == pytest.approx(
            lam * mm1_mean_wait(lam, mu)
        )

    def test_sojourn_is_wait_plus_service(self):
        lam, mu = 0.4, 1.0
        assert mm1_mean_sojourn(lam, mu) == pytest.approx(
            mm1_mean_wait(lam, mu) + 1.0 / mu
        )

    def test_wait_diverges_near_saturation(self):
        assert mm1_mean_wait(0.99, 1.0) > 50 * mm1_mean_wait(0.5, 1.0)

    def test_unstable_and_invalid(self):
        with pytest.raises(ConfigurationError):
            mm1_mean_wait(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            mm1_mean_wait(1.5, 1.0)
        with pytest.raises(ConfigurationError):
            mm1_mean_wait(-0.5, 1.0)
        with pytest.raises(ConfigurationError):
            mm1_mean_wait(0.5, 0.0)


class TestErlangC:
    def test_single_server_reduces_to_rho(self):
        # For c=1, P(queue) = ρ.
        for lam in (0.2, 0.5, 0.9):
            assert erlang_c(lam, 1.0, 1) == pytest.approx(lam)

    def test_mmc_reduces_to_mm1(self):
        lam, mu = 0.6, 1.0
        assert mmc_mean_wait(lam, mu, 1) == pytest.approx(mm1_mean_wait(lam, mu))
        assert mmc_mean_sojourn(lam, mu, 1) == pytest.approx(
            mm1_mean_sojourn(lam, mu)
        )

    def test_textbook_two_servers(self):
        # λ=1, μ=1, c=2: a=1, ρ=0.5 → C = (1/2·2)/(1+1+1/2·2)·... = 1/3.
        assert erlang_c(1.0, 1.0, 2) == pytest.approx(1.0 / 3.0)
        assert mmc_mean_wait(1.0, 1.0, 2) == pytest.approx(1.0 / 3.0)

    def test_probability_bounds(self):
        for servers in (2, 4, 8):
            for rho in (0.1, 0.5, 0.9):
                c = erlang_c(rho * servers, 1.0, servers)
                assert 0.0 < c < 1.0

    def test_pooling_helps(self):
        # Same offered load per server: more servers → shorter queueing.
        assert mmc_mean_wait(3.2, 1.0, 4) < mmc_mean_wait(1.6, 1.0, 2)
        assert mmc_mean_wait(1.6, 1.0, 2) < mm1_mean_wait(0.8, 1.0)

    def test_littles_law_identity(self):
        lam, mu, c = 2.5, 1.0, 4
        assert mmc_mean_number_in_system(lam, mu, c) == pytest.approx(
            lam * mmc_mean_sojourn(lam, mu, c)
        )

    def test_unstable(self):
        with pytest.raises(ConfigurationError):
            erlang_c(4.0, 1.0, 4)
        with pytest.raises(ConfigurationError):
            mmc_mean_wait(2.0, 1.0, 0)


class TestPriority:
    def test_single_class_reduces_to_fifo(self):
        lam, mu = 0.6, 1.0
        (wait,) = priority_mm1_waits([lam], mu)
        assert wait == pytest.approx(mm1_mean_wait(lam, mu))

    def test_conservation_law(self):
        # Kleinrock's conservation: Σ ρ_k·Wq_k is invariant under the
        # (work-conserving, nonpreemptive) discipline — equals the FIFO value.
        lams, mu = (0.3, 0.25, 0.15), 1.0
        total = sum(lams)
        waits = priority_mm1_waits(lams, mu)
        weighted = sum(lam / mu * w for lam, w in zip(lams, waits))
        assert weighted == pytest.approx(total / mu * mm1_mean_wait(total, mu))

    def test_high_class_waits_less(self):
        waits = priority_mm1_waits((0.4, 0.3, 0.2), 1.0)
        assert waits[0] < waits[1] < waits[2]

    def test_textbook_two_classes(self):
        # λ=(0.4,0.4), μ=1: W0=0.8, σ=(0.4,0.8) →
        # Wq1 = 0.8/0.6, Wq2 = 0.8/(0.6·0.2).
        w1, w2 = priority_mm1_waits((0.4, 0.4), 1.0)
        assert w1 == pytest.approx(0.8 / 0.6)
        assert w2 == pytest.approx(0.8 / (0.6 * 0.2))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            priority_mm1_waits([], 1.0)
        with pytest.raises(ConfigurationError):
            priority_mm1_waits((0.5, 0.6), 1.0)  # total load >= 1
        with pytest.raises(ConfigurationError):
            priority_mm1_waits((0.5, -0.1), 1.0)


class TestUtilization:
    def test_values(self):
        assert utilization(0.5, 1.0) == pytest.approx(0.5)
        assert utilization(2.0, 1.0, servers=4) == pytest.approx(0.5)

    def test_saturation_rejected(self):
        with pytest.raises(ConfigurationError):
            utilization(4.0, 1.0, servers=4)
