"""Cluster assembly from ClusterConfig."""

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.errors import ConfigurationError
from repro.common.units import GB, GBPS, MB
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import Simulation


class TestClusterConfig:
    def test_paper_defaults(self):
        config = ClusterConfig()
        assert config.num_nodes == 100
        assert config.cores_per_node == 8
        assert config.memory_per_node == 16 * GB
        assert config.uplink == 2 * GBPS
        assert config.downlink == 40 * GBPS
        assert config.executors_per_node == 2
        assert config.total_executors == 200

    def test_total_slots(self):
        config = ClusterConfig(num_nodes=10, executors_per_node=2, executor_slots=4)
        assert config.total_slots == 80

    def test_slot_overcommit_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(cores_per_node=4, executors_per_node=2, executor_slots=3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"executors_per_node": 0},
            {"executor_slots": 0},
            {"nodes_per_rack": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterConfig(**kwargs)


class TestClusterBuild:
    @pytest.fixture
    def cluster(self):
        return Cluster(ClusterConfig(num_nodes=5, executors_per_node=2, executor_slots=4))

    def test_node_and_executor_counts(self, cluster):
        assert len(cluster.nodes) == 5
        assert len(cluster.executors) == 10

    def test_deterministic_ids(self, cluster):
        assert cluster.node_ids[0] == "worker-000"
        assert cluster.executors[0].executor_id == "executor-000"

    def test_executors_on_node(self, cluster):
        execs = cluster.executors_on("worker-002")
        assert len(execs) == 2
        assert all(e.node_id == "worker-002" for e in execs)

    def test_lookup_errors(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.node("ghost")
        with pytest.raises(ConfigurationError):
            cluster.executor("ghost")

    def test_free_and_owned_executors(self, cluster):
        assert len(cluster.free_executors()) == 10
        cluster.executors[0].allocate("app-1")
        cluster.executors[3].allocate("app-1")
        assert len(cluster.free_executors()) == 8
        assert [e.executor_id for e in cluster.executors_of("app-1")] == [
            "executor-000",
            "executor-003",
        ]

    def test_rack_assignment_round_robin(self):
        cluster = Cluster(ClusterConfig(num_nodes=5, nodes_per_rack=2))
        topo = cluster.topology
        assert topo.rack_of("worker-000") == "rack-000"
        assert topo.rack_of("worker-001") == "rack-000"
        assert topo.rack_of("worker-002") == "rack-001"
        assert topo.rack_of("worker-004") == "rack-002"

    def test_fabric_registration(self):
        sim = Simulation()
        fabric = NetworkFabric(sim)
        Cluster(ClusterConfig(num_nodes=3), fabric=fabric)
        # A transfer between registered nodes must be admissible.
        fabric.start_transfer("worker-000", "worker-002", size=1.0)

    def test_identical_configs_build_identical_clusters(self):
        a = Cluster(ClusterConfig(num_nodes=4))
        b = Cluster(ClusterConfig(num_nodes=4))
        assert a.node_ids == b.node_ids
        assert [e.executor_id for e in a.executors] == [
            e.executor_id for e in b.executors
        ]
