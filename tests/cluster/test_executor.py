"""Executor state machine: allocation, slots, release."""

import pytest

from repro.cluster.executor import Executor, ExecutorState
from repro.cluster.node import WorkerNode
from repro.common.errors import AllocationError, CapacityError


@pytest.fixture
def node():
    return WorkerNode(
        "w-0", cores=8, memory=1024.0, disk_bandwidth=100.0, uplink=10.0, downlink=10.0
    )


@pytest.fixture
def executor(node):
    return Executor("e-0", node, slots=2)


class TestAllocation:
    def test_starts_free(self, executor):
        assert executor.is_free
        assert executor.owner is None
        assert executor.state is ExecutorState.FREE

    def test_allocate_sets_owner(self, executor):
        executor.allocate("app-1")
        assert not executor.is_free
        assert executor.owner == "app-1"

    def test_double_allocation_rejected(self, executor):
        executor.allocate("app-1")
        with pytest.raises(AllocationError):
            executor.allocate("app-2")

    def test_release_returns_to_pool(self, executor):
        executor.allocate("app-1")
        executor.release()
        assert executor.is_free
        assert executor.owner is None

    def test_release_unallocated_rejected(self, executor):
        with pytest.raises(AllocationError):
            executor.release()

    def test_release_while_busy_rejected(self, executor):
        executor.allocate("app-1")
        executor.start_task("t-0")
        with pytest.raises(AllocationError):
            executor.release()

    def test_reallocation_after_release(self, executor):
        executor.allocate("app-1")
        executor.release()
        executor.allocate("app-2")
        assert executor.owner == "app-2"


class TestSlots:
    def test_slot_accounting(self, executor):
        executor.allocate("app-1")
        assert executor.free_slots == 2
        executor.start_task("t-0")
        assert executor.free_slots == 1
        executor.start_task("t-1")
        assert executor.free_slots == 0

    def test_overcommit_rejected(self, executor):
        executor.allocate("app-1")
        executor.start_task("t-0")
        executor.start_task("t-1")
        with pytest.raises(CapacityError):
            executor.start_task("t-2")

    def test_start_without_owner_rejected(self, executor):
        with pytest.raises(AllocationError):
            executor.start_task("t-0")

    def test_duplicate_task_rejected(self, executor):
        executor.allocate("app-1")
        executor.start_task("t-0")
        with pytest.raises(AllocationError):
            executor.start_task("t-0")

    def test_finish_frees_slot(self, executor):
        executor.allocate("app-1")
        executor.start_task("t-0")
        executor.finish_task("t-0")
        assert executor.free_slots == 2

    def test_finish_unknown_task_rejected(self, executor):
        executor.allocate("app-1")
        with pytest.raises(AllocationError):
            executor.finish_task("ghost")

    def test_zero_slots_rejected(self, node):
        with pytest.raises(CapacityError):
            Executor("e-x", node, slots=0)

    def test_node_id_passthrough(self, executor):
        assert executor.node_id == "w-0"
