"""WorkerNode: capacity checks and disk model."""

import pytest

from repro.cluster.executor import Executor
from repro.cluster.node import WorkerNode
from repro.common.errors import CapacityError, ConfigurationError


def make_node(cores=4, disk=100.0):
    return WorkerNode(
        "w-0",
        cores=cores,
        memory=1024.0,
        disk_bandwidth=disk,
        uplink=10.0,
        downlink=10.0,
    )


class TestConstruction:
    def test_valid(self):
        node = make_node()
        assert node.node_id == "w-0"
        assert node.executors == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"memory": 0},
            {"disk_bandwidth": -1},
            {"uplink": 0},
            {"downlink": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        base = dict(cores=4, memory=1024.0, disk_bandwidth=100.0, uplink=10.0, downlink=10.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            WorkerNode("w-0", **base)


class TestExecutorHosting:
    def test_attach_within_cores(self):
        node = make_node(cores=4)
        Executor("e-0", node, slots=2)
        Executor("e-1", node, slots=2)
        assert len(node.executors) == 2

    def test_attach_beyond_cores_rejected(self):
        node = make_node(cores=2)
        Executor("e-0", node, slots=2)
        with pytest.raises(CapacityError):
            Executor("e-1", node, slots=1)


class TestDisk:
    def test_local_read_time(self):
        node = make_node(disk=50.0)
        assert node.local_read_time(100.0) == pytest.approx(2.0)

    def test_zero_size_reads_instantly(self):
        assert make_node().local_read_time(0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_node().local_read_time(-1.0)
