"""Rack topology queries."""

import pytest

from repro.cluster.topology import Topology
from repro.common.errors import ConfigurationError


@pytest.fixture
def topo():
    t = Topology()
    for i in range(6):
        t.add_node(f"n{i}", f"rack-{i // 3}")
    return t


def test_rack_of(topo):
    assert topo.rack_of("n0") == "rack-0"
    assert topo.rack_of("n5") == "rack-1"


def test_same_rack(topo):
    assert topo.same_rack("n0", "n2")
    assert not topo.same_rack("n0", "n3")


def test_nodes_in(topo):
    assert topo.nodes_in("rack-0") == ["n0", "n1", "n2"]


def test_nodes_outside(topo):
    assert topo.nodes_outside("rack-0") == ["n3", "n4", "n5"]


def test_racks_listing(topo):
    assert [r.rack_id for r in topo.racks] == ["rack-0", "rack-1"]
    assert len(topo.racks[0]) == 3


def test_duplicate_node_rejected(topo):
    with pytest.raises(ConfigurationError):
        topo.add_node("n0", "rack-9")


def test_unknown_node_rejected(topo):
    with pytest.raises(ConfigurationError):
        topo.rack_of("ghost")


def test_unknown_rack_rejected(topo):
    with pytest.raises(ConfigurationError):
        topo.nodes_in("ghost")
