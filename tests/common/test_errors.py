"""Exception hierarchy contracts."""

from repro.common.errors import (
    AllocationError,
    CapacityError,
    ConfigurationError,
    ReproError,
    SimulationError,
)


def test_all_inherit_root():
    for exc in (ConfigurationError, SimulationError, AllocationError, CapacityError):
        assert issubclass(exc, ReproError)


def test_capacity_is_allocation_error():
    assert issubclass(CapacityError, AllocationError)


def test_root_is_exception():
    assert issubclass(ReproError, Exception)


def test_catching_root_catches_all():
    try:
        raise CapacityError("node full")
    except ReproError as exc:
        assert "node full" in str(exc)
