"""IdFactory: deterministic per-prefix counters."""

import pytest

from repro.common.ids import IdFactory


def test_sequential_per_prefix():
    ids = IdFactory()
    assert ids.next("worker") == "worker-000"
    assert ids.next("worker") == "worker-001"
    assert ids.next("block") == "block-000"
    assert ids.next("worker") == "worker-002"


def test_count_tracks_minted_ids():
    ids = IdFactory()
    assert ids.count("x") == 0
    ids.next("x")
    ids.next("x")
    assert ids.count("x") == 2
    assert ids.count("unrelated") == 0


def test_custom_width():
    ids = IdFactory(width=6)
    assert ids.next("xfer") == "xfer-000000"


def test_width_must_be_positive():
    with pytest.raises(ValueError):
        IdFactory(width=0)


def test_empty_prefix_rejected():
    with pytest.raises(ValueError):
        IdFactory().next("")


def test_reset_single_prefix():
    ids = IdFactory()
    ids.next("a")
    ids.next("b")
    ids.reset("a")
    assert ids.next("a") == "a-000"
    assert ids.next("b") == "b-001"


def test_reset_all():
    ids = IdFactory()
    ids.next("a")
    ids.next("b")
    ids.reset()
    assert ids.next("a") == "a-000"
    assert ids.next("b") == "b-000"


def test_two_factories_are_independent():
    a, b = IdFactory(), IdFactory()
    a.next("n")
    assert b.next("n") == "n-000"
