"""RngStreams: named, order-independent, reproducible random streams."""

import numpy as np
import pytest

from repro.common.rng import RngStreams, SeedSequenceError


def test_same_seed_same_stream_draws():
    a = RngStreams(seed=42).get("placement")
    b = RngStreams(seed=42).get("placement")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_give_independent_draws():
    streams = RngStreams(seed=42)
    x = streams.get("alpha").random(10)
    y = streams.get("beta").random(10)
    assert not np.array_equal(x, y)


def test_creation_order_does_not_matter():
    s1 = RngStreams(seed=7)
    _ = s1.get("first")
    late = s1.get("second").random(5)

    s2 = RngStreams(seed=7)
    early = s2.get("second").random(5)  # requested first this time
    assert np.array_equal(late, early)


def test_streams_are_cached():
    streams = RngStreams(seed=0)
    assert streams.get("x") is streams.get("x")


def test_different_seeds_differ():
    a = RngStreams(seed=1).get("s").random(8)
    b = RngStreams(seed=2).get("s").random(8)
    assert not np.array_equal(a, b)


def test_names_lists_created_streams():
    streams = RngStreams(seed=0)
    streams.get("a")
    streams.get("b")
    assert set(streams.names()) == {"a", "b"}


def test_empty_name_rejected():
    with pytest.raises(SeedSequenceError):
        RngStreams(seed=0).get("")


def test_fork_is_deterministic_and_distinct():
    base = RngStreams(seed=5)
    f1 = base.fork(1).get("s").random(6)
    f1_again = RngStreams(seed=5).fork(1).get("s").random(6)
    f2 = base.fork(2).get("s").random(6)
    assert np.array_equal(f1, f1_again)
    assert not np.array_equal(f1, f2)


def test_seed_property():
    assert RngStreams(seed=99).seed == 99
