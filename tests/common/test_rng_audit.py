"""Unseeded-randomness audit: every stochastic path must be reproducible.

The whole experiment methodology rests on runs being pure functions of
their seeds — golden fixtures, twin-engine equivalence and the validation
suite all assume it.  One ``np.random.rand()`` (global legacy state) or
``random.Random()`` (OS-entropy seeded) anywhere in ``src/repro`` silently
breaks that.  This test AST-walks the entire package and rejects:

* any use of numpy's legacy global-state API (``np.random.<dist>``) —
  only the explicit-generator constructors are allowed;
* ``default_rng()`` / ``random.Random()`` called *without* a seed;
* star/function imports from ``random`` or ``numpy.random`` that would
  hide stateful calls from this audit.

Seeded constructors (``default_rng(0)``, ``random.Random(seed)``) and
passing ``np.random.Generator`` objects around are fine — that is the
:mod:`repro.common.rng` discipline.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent.parent / "src" / "repro"

#: the explicit, seedable surface of numpy.random — everything else is
#: legacy global state (np.random.seed / .rand / .choice ...)
ALLOWED_NP_RANDOM_ATTRS = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "PCG64",
    "SeedSequence",
}
#: the one acceptable attribute of the stdlib random module
ALLOWED_STDLIB_RANDOM_ATTRS = {"Random"}


def _is_np_random(node: ast.AST, numpy_aliases: set) -> bool:
    """True for ``<numpy alias>.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in numpy_aliases
    )


class Auditor(ast.NodeVisitor):
    def __init__(self, path: Path):
        self.path = path
        self.numpy_aliases: set = set()
        self.random_aliases: set = set()
        self.problems: list = []

    def flag(self, node: ast.AST, message: str) -> None:
        self.problems.append(f"{self.path}:{node.lineno}: {message}")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            elif alias.name == "random":
                self.random_aliases.add(alias.asname or "random")
            elif alias.name == "numpy.random":
                self.flag(node, "import numpy.random directly is not auditable;"
                                " use `import numpy as np`")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("random", "numpy.random"):
            names = ", ".join(a.name for a in node.names)
            self.flag(node, f"`from {node.module} import {names}` hides "
                            "stateful calls from the audit; import the module")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # np.random.<attr>
        if _is_np_random(node.value, self.numpy_aliases):
            if node.attr not in ALLOWED_NP_RANDOM_ATTRS:
                self.flag(node, f"np.random.{node.attr}: legacy global-state "
                                "API; use a seeded default_rng/RngStreams")
        # random.<attr>
        elif (
            isinstance(node.value, ast.Name)
            and node.value.id in self.random_aliases
            and node.attr not in ALLOWED_STDLIB_RANDOM_ATTRS
        ):
            self.flag(node, f"random.{node.attr}: module-level random state; "
                            "use a seeded random.Random or RngStreams")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        unseeded = not node.args and not node.keywords
        # np.random.default_rng()  — without a seed argument
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and _is_np_random(func.value, self.numpy_aliases)
            and unseeded
        ):
            self.flag(node, "default_rng() without a seed draws OS entropy")
        # random.Random() — without a seed argument
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and isinstance(func.value, ast.Name)
            and func.value.id in self.random_aliases
            and unseeded
        ):
            self.flag(node, "random.Random() without a seed draws OS entropy")
        self.generic_visit(node)


def audit_file(path: Path) -> list:
    auditor = Auditor(path.relative_to(SRC.parent))
    auditor.visit(ast.parse(path.read_text(), filename=str(path)))
    return auditor.problems


def test_src_tree_has_no_unseeded_randomness():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"nothing to audit under {SRC}"
    problems = [p for f in files for p in audit_file(f)]
    assert not problems, (
        "unseeded/unauditable randomness in src/repro:\n  "
        + "\n  ".join(problems)
    )


class TestAuditorCatches:
    """The audit itself must actually detect the failure modes it claims."""

    def run_on(self, code: str) -> list:
        auditor = Auditor(Path("snippet.py"))
        auditor.visit(ast.parse(code))
        return auditor.problems

    def test_legacy_global_api(self):
        assert self.run_on("import numpy as np\nx = np.random.rand(3)\n")
        assert self.run_on("import numpy as np\nnp.random.seed(0)\n")

    def test_unseeded_default_rng(self):
        assert self.run_on("import numpy as np\nr = np.random.default_rng()\n")

    def test_unseeded_stdlib_random(self):
        assert self.run_on("import random\nr = random.Random()\n")
        assert self.run_on("import random\nx = random.randint(0, 3)\n")

    def test_hiding_imports(self):
        assert self.run_on("from random import randint\n")
        assert self.run_on("from numpy.random import default_rng\n")

    def test_seeded_usage_is_clean(self):
        assert not self.run_on(
            "import numpy as np\nimport random\n"
            "a = np.random.default_rng(0)\n"
            "b = np.random.default_rng([1, 2])\n"
            "c = random.Random(7)\n"
            "def f(rng: np.random.Generator) -> None: ...\n"
        )
