"""Units: byte/bandwidth constants, pretty printers, BlockSpec."""

import pytest

from repro.common.units import (
    GB,
    GBPS,
    KB,
    MB,
    MBPS,
    TB,
    BlockSpec,
    gb,
    gbps,
    mb,
    mbps,
    pretty_bytes,
    pretty_seconds,
)


class TestConstants:
    def test_binary_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_network_constants_are_decimal_bits(self):
        assert GBPS == 1e9 / 8
        assert MBPS == 1e6 / 8

    def test_helpers_scale(self):
        assert mb(2) == 2 * MB
        assert gb(0.5) == 0.5 * GB
        assert gbps(2) == 2 * GBPS
        assert mbps(100) == 100 * MBPS

    def test_paper_uplink_in_bytes(self):
        # 2 Gbps uplink moves 250 MB (decimal) per second.
        assert gbps(2) == pytest.approx(250e6)


class TestPrettyBytes:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1024, "1.0 KB"),
            (128 * MB, "128.0 MB"),
            (1.5 * GB, "1.5 GB"),
            (2 * TB, "2.0 TB"),
        ],
    )
    def test_rendering(self, size, expected):
        assert pretty_bytes(size) == expected

    def test_negative(self):
        assert pretty_bytes(-1024) == "-1.0 KB"


class TestPrettySeconds:
    def test_millis(self):
        assert pretty_seconds(0.0123) == "12.3 ms"

    def test_seconds(self):
        assert pretty_seconds(12.34) == "12.34 s"

    def test_minutes(self):
        assert pretty_seconds(123.4) == "2m03.4s"

    def test_hours(self):
        assert pretty_seconds(3723.0) == "1h02m03.0s"

    def test_negative(self):
        assert pretty_seconds(-2.0) == "-2.00 s"


class TestBlockSpec:
    def test_defaults_match_paper(self):
        spec = BlockSpec()
        assert spec.size == 128 * MB
        assert spec.replication == 3

    def test_blocks_for_exact_multiple(self):
        spec = BlockSpec(size=10 * MB)
        assert spec.blocks_for(100 * MB) == 10

    def test_blocks_for_rounds_up(self):
        spec = BlockSpec(size=10 * MB)
        assert spec.blocks_for(101 * MB) == 11

    def test_blocks_for_zero(self):
        assert BlockSpec().blocks_for(0) == 0

    def test_blocks_for_tiny_file(self):
        assert BlockSpec(size=128 * MB).blocks_for(1) == 1

    def test_rejects_negative_file(self):
        with pytest.raises(ValueError):
            BlockSpec().blocks_for(-1)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BlockSpec(size=0)

    def test_rejects_bad_replication(self):
        with pytest.raises(ValueError):
            BlockSpec(replication=0)
