"""Shared fixtures: tiny deterministic cluster stacks for unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.units import MB
from repro.common.units import BlockSpec
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import RandomPlacement
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline


@pytest.fixture
def sim() -> Simulation:
    """A fresh simulation."""
    return Simulation()


@pytest.fixture
def timeline(sim: Simulation) -> Timeline:
    """A timeline bound to the fixture simulation's clock."""
    return Timeline(clock=lambda: sim.now)


@pytest.fixture
def fabric(sim: Simulation) -> NetworkFabric:
    """A network fabric on the fixture simulation."""
    return NetworkFabric(sim)


@pytest.fixture
def small_cluster(fabric: NetworkFabric) -> Cluster:
    """8 nodes x 2 cores, 2 single-slot executors per node, tame bandwidths."""
    return Cluster(
        ClusterConfig(
            num_nodes=8,
            cores_per_node=2,
            executors_per_node=2,
            executor_slots=1,
            disk_bandwidth=100 * MB,
            uplink=10 * MB,
            downlink=100 * MB,
            nodes_per_rack=4,
        ),
        fabric=fabric,
    )


@pytest.fixture
def small_hdfs(small_cluster: Cluster) -> HDFS:
    """HDFS over the small cluster: 10 MB blocks, 2 replicas, seeded rng."""
    return HDFS(
        small_cluster,
        block_spec=BlockSpec(size=10 * MB, replication=2),
        placement=RandomPlacement(),
        rng=np.random.default_rng(7),
    )
