"""The two-level allocation procedure (Algorithms 1 + 2 combined)."""

import pytest

from repro.core.allocation import DataAwareAllocator, two_level_allocate
from repro.core.demand import AppDemand, JobDemand, TaskDemand, validate_plan


def task(tid, *cands):
    return TaskDemand.of(tid, cands)


def app(app_id, jobs, quota=4, **kw):
    return AppDemand(app_id=app_id, jobs=tuple(jobs), quota=quota, **kw)


class TestLocalityPhase:
    def test_fig1_allocation(self):
        """Each app receives the executors storing its own blocks."""
        a1 = app("A1", [JobDemand("J1", (task("t11", "E1"), task("t12", "E2")))], quota=2)
        a2 = app("A2", [JobDemand("J2", (task("t21", "E3"), task("t22", "E4")))], quota=2)
        plan = two_level_allocate([a1, a2], ["E1", "E2", "E3", "E4"])
        assert sorted(plan.executors_of("A1")) == ["E1", "E2"]
        assert sorted(plan.executors_of("A2")) == ["E3", "E4"]
        assert len(plan.assignment) == 4

    def test_fig3_maxmin_fairness_on_contested_executors(self):
        """Both apps want only E1/E2: each must get exactly one."""

        def contested(app_id):
            return app(
                app_id,
                [
                    JobDemand(f"{app_id}-J1", (task(f"{app_id}-t1", "E1"),)),
                    JobDemand(f"{app_id}-J2", (task(f"{app_id}-t2", "E2"),)),
                ],
                quota=2,
            )

        plan = two_level_allocate(
            [contested("A3"), contested("A4")], ["E1", "E2", "E3", "E4"], fill=False
        )
        hot_a3 = set(plan.executors_of("A3")) & {"E1", "E2"}
        hot_a4 = set(plan.executors_of("A4")) & {"E1", "E2"}
        assert len(hot_a3) == 1
        assert len(hot_a4) == 1

    def test_historical_locality_prioritises_the_starved_app(self):
        rich = app(
            "rich",
            [JobDemand("rj", (task("rt", "E1"),))],
            quota=2,
            local_jobs=9,
            decided_jobs=10,
            local_tasks=9,
            decided_tasks=10,
        )
        poor = app(
            "poor",
            [JobDemand("pj", (task("pt", "E1"),))],
            quota=2,
            local_jobs=0,
            decided_jobs=10,
            decided_tasks=10,
        )
        plan = two_level_allocate([rich, poor], ["E1"], fill=False)
        assert plan.executors_of("poor") == ["E1"]
        assert plan.executors_of("rich") == []

    def test_quota_is_a_hard_cap(self):
        a = app(
            "A",
            [JobDemand("J", tuple(task(f"t{i}", f"E{i}") for i in range(5)))],
            quota=2,
        )
        plan = two_level_allocate([a], [f"E{i}" for i in range(5)], fill=True)
        assert plan.total_granted == 2

    def test_held_executors_reduce_budget(self):
        a = app(
            "A",
            [JobDemand("J", (task("t0", "E0"), task("t1", "E1")))],
            quota=2,
            held=1,
        )
        plan = two_level_allocate([a], ["E0", "E1"], fill=False)
        assert plan.total_granted == 1

    def test_empty_demands_grant_nothing_without_fill(self):
        a = app("A", [], quota=4)
        plan = two_level_allocate([a], ["E0", "E1"], fill=False)
        assert plan.total_granted == 0

    def test_plan_always_validates(self):
        apps = [
            app("A1", [JobDemand("J1", (task("t1", "E1", "E2"), task("t2", "E2")))], quota=2),
            app("A2", [JobDemand("J2", (task("t3", "E1"),))], quota=1),
        ]
        idle = ["E1", "E2", "E3"]
        plan = two_level_allocate(apps, idle)
        validate_plan(plan, apps, idle)


class TestExecutorCapacity:
    def test_multislot_executor_absorbs_colocated_tasks(self):
        a = app(
            "A",
            [JobDemand("J", (task("t0", "E0"), task("t1", "E0"), task("t2", "E0")))],
            quota=1,
        )
        plan = two_level_allocate([a], ["E0"], executor_capacity=4)
        assert plan.executors_of("A") == ["E0"]
        assert len(plan.assignment) == 3

    def test_capacity_one_keeps_paper_semantics(self):
        a = app(
            "A",
            [JobDemand("J", (task("t0", "E0"), task("t1", "E0")))],
            quota=2,
        )
        plan = two_level_allocate([a], ["E0"], executor_capacity=1)
        assert len(plan.assignment) == 1

    def test_capacity_validates(self):
        a = app(
            "A",
            [JobDemand("J", (task("t0", "E0"), task("t1", "E0")))],
            quota=1,
        )
        plan = two_level_allocate([a], ["E0"], executor_capacity=2)
        validate_plan(plan, [a], ["E0"], executor_capacity=2)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            two_level_allocate([], [], executor_capacity=0)


class TestFillPhase:
    def test_fill_distributes_leftovers(self):
        a1 = app("A1", [JobDemand("J1", (task("t1", "E0"),))], quota=3)
        a2 = app("A2", [], quota=3)
        plan = two_level_allocate(
            [a1, a2], ["E0", "E1", "E2", "E3"], fill=True,
            fill_limits={"A1": 2, "A2": 1},
        )
        # Fill limits cap the round's total take: A1's locality grant counts
        # against its limit of 2, so it gets exactly one filler on top.
        assert len(plan.executors_of("A1")) == 2
        assert len(plan.executors_of("A2")) == 1

    def test_fill_limit_zero_blocks_filler(self):
        a = app("A", [], quota=4)
        plan = two_level_allocate([a], ["E0", "E1"], fill=True, fill_limits={"A": 0})
        assert plan.total_granted == 0

    def test_fill_without_limits_fills_to_quota(self):
        a = app("A", [], quota=2)
        plan = two_level_allocate([a], ["E0", "E1", "E2"], fill=True)
        assert plan.total_granted == 2


class TestJobPriorityInsideApp:
    def test_small_job_first_under_scarcity(self):
        small = JobDemand("S", (task("s1", "E1"),))
        big = JobDemand("B", (task("b1", "E1"), task("b2", "E1")))
        a = app("A", [big, small], quota=1)
        plan = two_level_allocate([a], ["E1"], fill=False)
        assert plan.assignment == {"s1": "E1"}

    def test_whole_job_before_next_job(self):
        j1 = JobDemand("J1", (task("a1", "E1"), task("a2", "E2")))
        j2 = JobDemand("J2", (task("b1", "E3"), task("b2", "E4")))
        a = app("A", [j1, j2], quota=2)
        plan = two_level_allocate([a], ["E1", "E2", "E3", "E4"], fill=False)
        satisfied = set(plan.assignment)
        assert satisfied == {"a1", "a2"}  # J1 fully, J2 untouched


class TestAllocatorFacade:
    def test_facade_forwards_settings(self):
        a = app(
            "A", [JobDemand("J", (task("t0", "E0"), task("t1", "E0")))], quota=1
        )
        allocator = DataAwareAllocator(fill=False, executor_capacity=2)
        plan = allocator.allocate([a], ["E0", "E1"])
        assert len(plan.assignment) == 2
        assert plan.total_granted == 1
