"""The heap-based allocation engine must replay the reference bit for bit.

``two_level_allocate_incremental`` replaces the reference's per-grant full
rescan with a key heap, relying on three invariants (see its docstring);
these tests pin the equivalence on hand-built corner cases and a seeded
random sweep.  The property suite extends the sweep with hypothesis.
"""

import random

import pytest

from repro.core.allocation import (
    ALLOCATION_ENGINES,
    DataAwareAllocator,
    two_level_allocate,
    two_level_allocate_incremental,
    two_level_allocate_vectorized,
)
from repro.core.demand import AppDemand, JobDemand, TaskDemand


def task(tid, *cands):
    return TaskDemand.of(tid, cands)


def app(app_id, jobs, quota=4, **kw):
    return AppDemand(app_id=app_id, jobs=tuple(jobs), quota=quota, **kw)


def assert_engines_agree(apps, idle, **kw):
    ref = two_level_allocate(apps, list(idle), **kw)
    inc = two_level_allocate_incremental(apps, list(idle), **kw)
    vec = two_level_allocate_vectorized(apps, list(idle), **kw)
    assert ref.signature() == inc.signature()
    assert ref.signature() == vec.signature()
    return ref


class TestHandCases:
    def test_disjoint_demands(self):
        a1 = app("A1", [JobDemand("J1", (task("t11", "E1"), task("t12", "E2")))], quota=2)
        a2 = app("A2", [JobDemand("J2", (task("t21", "E3"), task("t22", "E4")))], quota=2)
        plan = assert_engines_agree([a1, a2], ["E1", "E2", "E3", "E4"])
        assert sorted(plan.executors_of("A1")) == ["E1", "E2"]

    def test_contested_executors_split_fairly(self):
        def contested(app_id):
            return app(
                app_id,
                [
                    JobDemand(f"{app_id}-J1", (task(f"{app_id}-t1", "E1"),)),
                    JobDemand(f"{app_id}-J2", (task(f"{app_id}-t2", "E2"),)),
                ],
                quota=2,
            )

        assert_engines_agree(
            [contested("A3"), contested("A4")], ["E1", "E2", "E3", "E4"], fill=False
        )

    def test_locality_history_reordering(self):
        rich = app(
            "rich", [JobDemand("rj", (task("rt", "E1"),))], quota=2,
            local_jobs=9, decided_jobs=10, local_tasks=9, decided_tasks=10,
        )
        poor = app(
            "poor", [JobDemand("pj", (task("pt", "E1"),))], quota=2,
            local_jobs=0, decided_jobs=10, decided_tasks=10,
        )
        plan = assert_engines_agree([rich, poor], ["E1"], fill=False)
        assert plan.executors_of("poor") == ["E1"]

    def test_fill_phase_and_limits(self):
        a = app("A", [JobDemand("J", (task("t", "E0"),))], quota=4)
        b = app("B", [], quota=4)
        assert_engines_agree(
            [a, b], [f"E{i}" for i in range(6)],
            fill=True, fill_limits={"A": 2, "B": 1},
        )

    def test_executor_capacity_packs_tasks(self):
        jobs = [
            JobDemand("J", tuple(task(f"t{i}", "E1", "E2") for i in range(6)))
        ]
        assert_engines_agree(
            [app("A", jobs, quota=2)], ["E1", "E2"], executor_capacity=4
        )

    def test_quota_exhaustion_mid_job(self):
        jobs = [
            JobDemand("J1", tuple(task(f"a{i}", f"E{i}") for i in range(3))),
            JobDemand("J2", (task("b0", "E9"),)),
        ]
        assert_engines_agree(
            [app("A", jobs, quota=2, held=1)],
            [f"E{i}" for i in range(3)] + ["E9"],
        )

    def test_empty_inputs(self):
        assert_engines_agree([], ["E1"])
        assert_engines_agree([app("A", [], quota=2)], [])


class TestRandomSweep:
    def test_seeded_random_instances(self):
        """200 random demand rounds: plan signatures must match exactly."""
        rng = random.Random(7)
        for _ in range(200):
            n_apps = rng.randint(1, 6)
            n_execs = rng.randint(0, 14)
            idle = [f"E{i}" for i in range(n_execs)]
            apps = []
            for a in range(n_apps):
                jobs = []
                for j in range(rng.randint(0, 4)):
                    tasks = tuple(
                        task(
                            f"A{a}-J{j}-t{t}",
                            *rng.sample(idle, min(len(idle), rng.randint(0, 3))),
                        )
                        for t in range(rng.randint(1, 5))
                    )
                    jobs.append(JobDemand(f"A{a}-J{j}", tasks))
                decided_jobs = rng.randint(0, 10)
                decided_tasks = rng.randint(decided_jobs, 30)
                quota = rng.randint(1, 6)
                apps.append(
                    AppDemand(
                        app_id=f"A{a}",
                        jobs=tuple(jobs),
                        quota=quota,
                        held=rng.randint(0, min(3, quota)),
                        local_jobs=rng.randint(0, decided_jobs),
                        decided_jobs=decided_jobs,
                        local_tasks=rng.randint(0, decided_tasks),
                        decided_tasks=decided_tasks,
                    )
                )
            fill = rng.random() < 0.7
            fill_limits = (
                {a.app_id: rng.randint(0, 4) for a in apps}
                if rng.random() < 0.5
                else None
            )
            capacity = rng.randint(1, 3)
            assert_engines_agree(
                apps, idle,
                fill=fill, fill_limits=fill_limits, executor_capacity=capacity,
            )


class TestAllocatorFacade:
    def test_engine_validation(self):
        with pytest.raises(ValueError, match="unknown allocation engine"):
            DataAwareAllocator(engine="bogus")

    def test_engines_constant(self):
        assert set(ALLOCATION_ENGINES) == {"incremental", "reference", "vectorized"}

    def test_facade_dispatches_both_engines(self):
        a = app("A", [JobDemand("J", (task("t", "E1"),))], quota=2)
        plans = [
            DataAwareAllocator(engine=engine).allocate([a], ["E1", "E2"])
            for engine in ALLOCATION_ENGINES
        ]
        for other in plans[1:]:
            assert plans[0].signature() == other.signature()
