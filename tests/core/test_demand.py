"""Demand model and plan validation (Eq. 2–5 feasibility)."""

import pytest

from repro.common.errors import AllocationError, ConfigurationError
from repro.core.demand import (
    AllocationPlan,
    AppDemand,
    JobDemand,
    TaskDemand,
    validate_plan,
)


def task(tid, *cands):
    return TaskDemand.of(tid, cands)


def app(app_id="a", jobs=(), quota=4, held=0, **kw):
    return AppDemand(app_id=app_id, jobs=tuple(jobs), quota=quota, held=held, **kw)


class TestTaskDemand:
    def test_candidates_frozen(self):
        t = task("t0", "e1", "e2")
        assert t.candidates == frozenset({"e1", "e2"})

    def test_empty_candidates_legal(self):
        assert task("t0").candidates == frozenset()


class TestJobDemand:
    def test_total_defaults_to_unsatisfied(self):
        j = JobDemand("j", (task("t0"), task("t1")))
        assert j.total_tasks == 2
        assert j.unsatisfied == 2

    def test_total_may_exceed_unsatisfied(self):
        j = JobDemand("j", (task("t0"),), total_tasks=5)
        assert j.total_tasks == 5
        assert j.unsatisfied == 1

    def test_total_below_unsatisfied_rejected(self):
        with pytest.raises(ConfigurationError):
            JobDemand("j", (task("t0"), task("t1")), total_tasks=1)


class TestAppDemand:
    def test_budget(self):
        a = app(quota=5, held=2)
        assert a.budget == 3

    def test_held_above_quota_rejected(self):
        with pytest.raises(ConfigurationError):
            app(quota=2, held=3)

    def test_duplicate_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            app(jobs=[JobDemand("j", (task("t0"),)), JobDemand("j", (task("t1"),))])

    def test_inconsistent_locality_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            app(local_jobs=3, decided_jobs=2)

    def test_total_unsatisfied(self):
        a = app(jobs=[JobDemand("j1", (task("t0"),)), JobDemand("j2", (task("t1"), task("t2")))])
        assert a.total_unsatisfied == 3


class TestAllocationPlan:
    def test_grant_and_assign(self):
        plan = AllocationPlan()
        plan.grant("a", "e1")
        plan.assign("t0", "e1")
        assert plan.executors_of("a") == ["e1"]
        assert plan.total_granted == 1
        assert plan.satisfied_tasks() == {"t0"}

    def test_double_assignment_rejected(self):
        plan = AllocationPlan()
        plan.assign("t0", "e1")
        with pytest.raises(AllocationError):
            plan.assign("t0", "e2")


class TestValidatePlan:
    def make_apps(self):
        return [
            app("a1", jobs=[JobDemand("j1", (task("t1", "e1"), task("t2", "e2")))], quota=2),
            app("a2", jobs=[JobDemand("j2", (task("t3", "e2"),))], quota=2),
        ]

    def test_valid_plan_passes(self):
        plan = AllocationPlan()
        plan.grant("a1", "e1")
        plan.assign("t1", "e1")
        validate_plan(plan, self.make_apps(), ["e1", "e2"])

    def test_double_grant_rejected(self):
        plan = AllocationPlan()
        plan.grant("a1", "e1")
        plan.grant("a2", "e1")
        with pytest.raises(AllocationError, match="granted twice"):
            validate_plan(plan, self.make_apps(), ["e1", "e2"])

    def test_grant_of_non_idle_rejected(self):
        plan = AllocationPlan()
        plan.grant("a1", "e9")
        with pytest.raises(AllocationError, match="not idle"):
            validate_plan(plan, self.make_apps(), ["e1"])

    def test_assignment_to_non_candidate_rejected(self):
        plan = AllocationPlan()
        plan.grant("a1", "e2")
        plan.assign("t1", "e2")  # t1's only candidate is e1
        with pytest.raises(AllocationError, match="non-candidate"):
            validate_plan(plan, self.make_apps(), ["e1", "e2"])

    def test_assignment_without_grant_rejected(self):
        plan = AllocationPlan()
        plan.grant("a2", "e2")
        plan.assign("t1", "e1")  # e1 never granted to a1
        with pytest.raises(AllocationError, match="not granted"):
            validate_plan(plan, self.make_apps(), ["e1", "e2"])

    def test_executor_capacity_enforced(self):
        apps = [
            app(
                "a1",
                jobs=[JobDemand("j1", (task("t1", "e1"), task("t2", "e1")))],
                quota=1,
            )
        ]
        plan = AllocationPlan()
        plan.grant("a1", "e1")
        plan.assign("t1", "e1")
        plan.assign("t2", "e1")
        with pytest.raises(AllocationError, match="capacity"):
            validate_plan(plan, apps, ["e1"], executor_capacity=1)
        validate_plan(plan, apps, ["e1"], executor_capacity=2)  # ok with slots

    def test_quota_enforced(self):
        apps = [app("a1", jobs=[JobDemand("j1", (task("t1", "e1"),))], quota=1, held=1)]
        plan = AllocationPlan()
        plan.grant("a1", "e1")
        with pytest.raises(AllocationError, match="quota"):
            validate_plan(plan, apps, ["e1"])

    def test_release_offsets_quota(self):
        apps = [app("a1", jobs=[JobDemand("j1", (task("t1", "e1"),))], quota=1, held=1)]
        plan = AllocationPlan()
        plan.grant("a1", "e1")
        plan.release("a1", "e0")
        validate_plan(plan, apps, ["e1"], held_executors={"a1": ["e0"]})

    def test_release_of_unheld_executor_rejected(self):
        apps = [app("a1", quota=2, held=1)]
        plan = AllocationPlan()
        plan.release("a1", "e9")
        with pytest.raises(AllocationError, match="does not hold"):
            validate_plan(plan, apps, [], held_executors={"a1": ["e0"]})

    def test_grant_to_unknown_app_rejected(self):
        plan = AllocationPlan()
        plan.grant("ghost", "e1")
        with pytest.raises(AllocationError, match="unknown app"):
            validate_plan(plan, self.make_apps(), ["e1"])

    def test_assignment_of_unknown_task_rejected(self):
        plan = AllocationPlan()
        plan.grant("a1", "e1")
        plan.assign("ghost", "e1")
        with pytest.raises(AllocationError, match="unknown task"):
            validate_plan(plan, self.make_apps(), ["e1"])
