"""Max-min fairness predicates and Jain's index."""

import pytest

from repro.core.fairness import is_maxmin_fair_improvement, jains_index, lexmin_key


class TestLexminKey:
    def test_sorted_ascending(self):
        assert lexmin_key([0.5, 0.1, 0.9]) == (0.1, 0.5, 0.9)

    def test_comparison_raises_the_minimum_first(self):
        worse = [0.0, 1.0]
        better = [0.4, 0.5]
        assert lexmin_key(better) > lexmin_key(worse)

    def test_second_minimum_breaks_ties(self):
        a = [0.3, 0.5]
        b = [0.3, 0.9]
        assert lexmin_key(b) > lexmin_key(a)


class TestImprovement:
    def test_fig3_scenario(self):
        naive = [1.0, 0.0]  # A3 both jobs local, A4 none
        custody = [0.5, 0.5]
        assert is_maxmin_fair_improvement(custody, naive)
        assert not is_maxmin_fair_improvement(naive, custody)

    def test_equal_vectors_are_not_improvements(self):
        assert not is_maxmin_fair_improvement([0.5, 0.5], [0.5, 0.5])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            is_maxmin_fair_improvement([1.0], [1.0, 2.0])

    def test_permutation_invariance(self):
        assert not is_maxmin_fair_improvement([0.2, 0.8], [0.8, 0.2])


class TestJainsIndex:
    def test_perfectly_even(self):
        assert jains_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_user_hogging(self):
        # One of n users gets everything: index = 1/n.
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        assert 0.0 < jains_index([0.1, 0.9]) <= 1.0

    def test_scale_invariant(self):
        assert jains_index([1.0, 2.0]) == pytest.approx(jains_index([10.0, 20.0]))

    def test_all_zero_defined_fair(self):
        assert jains_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jains_index([-1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jains_index([])
