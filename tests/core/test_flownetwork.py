"""Flow-network theory: Fig. 2 construction, LP bound, brute-force optimum."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.allocation import two_level_allocate
from repro.core.demand import AppDemand, JobDemand, TaskDemand
from repro.core.flownetwork import (
    ConcurrentFlowInstance,
    brute_force_optimum,
    build_flow_network,
    lp_concurrent_flow_bound,
)


def task(tid, *cands):
    return TaskDemand.of(tid, cands)


def app(app_id, jobs, quota=10):
    return AppDemand(app_id=app_id, jobs=tuple(jobs), quota=quota)


def fig2_instance():
    """The paper's Fig. 2: A1 with T1, T2; A2 with T21; executors E1..E3."""
    a1 = app("A1", [JobDemand("J1", (task("T1", "E1"), task("T2", "E1", "E2")))])
    a2 = app("A2", [JobDemand("J2", (task("T21", "E2", "E3"),))])
    return ConcurrentFlowInstance.of([a1, a2], ["E1", "E2", "E3"])


class TestInstance:
    def test_demands(self):
        inst = fig2_instance()
        assert inst.demands == {"A1": 2, "A2": 1}

    def test_unknown_candidate_rejected(self):
        a = app("A", [JobDemand("J", (task("T", "E9"),))])
        with pytest.raises(ConfigurationError):
            ConcurrentFlowInstance.of([a], ["E1"])


class TestBuildFlowNetwork:
    def test_fig2_topology(self):
        g = build_flow_network(fig2_instance())
        assert g.has_node(("source", "A1"))
        assert g.has_node("sink")
        assert g.has_edge(("source", "A1"), ("task", "T1"))
        assert g.has_edge(("task", "T1"), ("executor", "E1"))
        assert g.has_edge(("task", "T2"), ("executor", "E2"))
        assert g.has_edge(("task", "T21"), ("executor", "E3"))
        assert g.has_edge(("executor", "E1"), "sink")
        assert not g.has_edge(("task", "T1"), ("executor", "E3"))

    def test_unit_capacities(self):
        g = build_flow_network(fig2_instance())
        for _u, _v, data in g.edges(data=True):
            assert data["capacity"] == 1

    def test_source_demand_attribute(self):
        g = build_flow_network(fig2_instance())
        assert g.nodes[("source", "A1")]["demand"] == 2
        assert g.nodes[("source", "A2")]["demand"] == 1


class TestLpBound:
    def test_fig2_is_fully_satisfiable(self):
        # E1->T1, E2->T2, E3->T21 gives lambda = 1.
        assert lp_concurrent_flow_bound(fig2_instance()) == pytest.approx(1.0)

    def test_contention_halves_lambda(self):
        # Two single-task apps both only want E1: best min ratio is 0 for
        # one of them integrally, but fractionally each gets half.
        a1 = app("A1", [JobDemand("J1", (task("t1", "E1"),))])
        a2 = app("A2", [JobDemand("J2", (task("t2", "E1"),))])
        inst = ConcurrentFlowInstance.of([a1, a2], ["E1"])
        assert lp_concurrent_flow_bound(inst) == pytest.approx(0.5)

    def test_no_tasks_gives_one(self):
        inst = ConcurrentFlowInstance.of([app("A", [])], ["E1"])
        assert lp_concurrent_flow_bound(inst) == 1.0

    def test_lp_upper_bounds_integral_optimum(self):
        inst = fig2_instance()
        lp = lp_concurrent_flow_bound(inst)
        opt, _ = brute_force_optimum(inst)
        assert lp >= opt - 1e-9

    def test_lp_upper_bounds_two_level_heuristic(self):
        apps = [
            app("A1", [JobDemand("J1", (task("t1", "E1"), task("t2", "E2")))], quota=2),
            app("A2", [JobDemand("J2", (task("t3", "E1"), task("t4", "E3")))], quota=2),
        ]
        executors = ["E1", "E2", "E3"]
        inst = ConcurrentFlowInstance.of(apps, executors)
        lp = lp_concurrent_flow_bound(inst)
        plan = two_level_allocate(apps, executors, fill=False)
        # Heuristic's achieved min-locality fraction:
        fractions = []
        for a in apps:
            satisfied = sum(
                1 for j in a.jobs for t in j.tasks if t.task_id in plan.assignment
            )
            fractions.append(satisfied / a.total_unsatisfied)
        assert lp >= min(fractions) - 1e-9


class TestBruteForce:
    def test_fig2_optimum_is_perfect(self):
        opt, ownership = brute_force_optimum(fig2_instance())
        assert opt == pytest.approx(1.0)
        assert ownership.get("E1") == "A1"

    def test_contended_single_executor(self):
        a1 = app("A1", [JobDemand("J1", (task("t1", "E1"),))])
        a2 = app("A2", [JobDemand("J2", (task("t2", "E1"),))])
        inst = ConcurrentFlowInstance.of([a1, a2], ["E1"])
        opt, _ = brute_force_optimum(inst)
        assert opt == pytest.approx(0.0)  # somebody gets nothing

    def test_quota_constrains_optimum(self):
        a = AppDemand(
            app_id="A",
            jobs=(JobDemand("J", (task("t1", "E1"), task("t2", "E2"))),),
            quota=1,
        )
        inst = ConcurrentFlowInstance.of([a], ["E1", "E2"])
        opt, _ = brute_force_optimum(inst)
        assert opt == pytest.approx(0.5)

    def test_state_limit_guard(self):
        apps = [
            app(f"A{i}", [JobDemand(f"J{i}", (task(f"t{i}", "E0"),))])
            for i in range(4)
        ]
        inst = ConcurrentFlowInstance.of(apps, [f"E{i}" for i in range(12)])
        with pytest.raises(ConfigurationError):
            brute_force_optimum(inst, max_states=10)

    def test_two_level_heuristic_matches_optimum_on_fig1(self):
        a1 = app("A1", [JobDemand("J1", (task("t11", "E1"), task("t12", "E2")))], quota=2)
        a2 = app("A2", [JobDemand("J2", (task("t21", "E3"), task("t22", "E4")))], quota=2)
        executors = ["E1", "E2", "E3", "E4"]
        inst = ConcurrentFlowInstance.of([a1, a2], executors)
        opt, _ = brute_force_optimum(inst)
        plan = two_level_allocate([a1, a2], executors, fill=False)
        fractions = []
        for a in (a1, a2):
            satisfied = sum(
                1 for j in a.jobs for t in j.tasks if t.task_id in plan.assignment
            )
            fractions.append(satisfied / a.total_unsatisfied)
        assert min(fractions) == pytest.approx(opt) == pytest.approx(1.0)
