"""Algorithm 1: MINLOCALITY ordering."""

from repro.core.interapp import min_locality_order, pick_min_locality


def test_sorted_by_job_fraction_first():
    keys = [(0.8, 0.1, "a"), (0.2, 0.9, "b"), (0.5, 0.5, "c")]
    assert [k[2] for k in min_locality_order(keys)] == ["b", "c", "a"]


def test_tie_broken_by_task_fraction():
    keys = [(0.5, 0.9, "a"), (0.5, 0.1, "b")]
    assert [k[2] for k in min_locality_order(keys)] == ["b", "a"]


def test_final_tie_broken_by_app_id():
    keys = [(0.5, 0.5, "zeta"), (0.5, 0.5, "alpha")]
    assert [k[2] for k in min_locality_order(keys)] == ["alpha", "zeta"]


def test_pick_returns_least_localized():
    keys = [(0.9, 0.0, "rich"), (0.1, 0.0, "poor")]
    assert pick_min_locality(keys) == "poor"


def test_pick_skips_ineligible():
    keys = [(0.1, 0.0, "poor"), (0.9, 0.0, "rich")]
    assert pick_min_locality(keys, eligible=lambda a: a != "poor") == "rich"


def test_pick_returns_none_when_nobody_eligible():
    keys = [(0.1, 0.0, "a")]
    assert pick_min_locality(keys, eligible=lambda _: False) is None


def test_pick_empty():
    assert pick_min_locality([]) is None
