"""Algorithm 2: intra-application priority allocation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.demand import AppDemand, JobDemand, TaskDemand
from repro.core.intraapp import (
    greedy_intra_app,
    job_priority_order,
    optimal_intra_app,
    plan_value,
)


def task(tid, *cands):
    return TaskDemand.of(tid, cands)


def make_app(jobs, quota=10, held=0):
    return AppDemand(app_id="A", jobs=tuple(jobs), quota=quota, held=held)


class TestJobPriorityOrder:
    def test_fewest_unsatisfied_first(self):
        big = JobDemand("big", (task("b1"), task("b2"), task("b3")))
        small = JobDemand("small", (task("s1"),))
        assert [j.job_id for j in job_priority_order([big, small])] == ["small", "big"]

    def test_tie_broken_by_job_id(self):
        j1 = JobDemand("zz", (task("t1"),))
        j2 = JobDemand("aa", (task("t2"),))
        assert [j.job_id for j in job_priority_order([j1, j2])] == ["aa", "zz"]


class TestGreedyIntraApp:
    def test_fig4_priority_choice(self):
        """The paper's Fig. 4: with budget 2, satisfy job 1 fully (E1+E2)."""
        j1 = JobDemand("J1", (task("T511", "E1"), task("T512", "E2")))
        j2 = JobDemand("J2", (task("T521", "E3"), task("T522", "E4")))
        app = make_app([j1, j2], quota=2)
        result = greedy_intra_app(app, ["E1", "E2", "E3", "E4"])
        assert sorted(result.granted) == ["E1", "E2"]
        assert result.satisfied_jobs == ["J1"]
        assert result.assignment == {"T511": "E1", "T512": "E2"}

    def test_smaller_job_served_first(self):
        small = JobDemand("S", (task("s1", "E1"),))
        big = JobDemand("B", (task("b1", "E1"), task("b2", "E2")))
        app = make_app([big, small], quota=1)
        result = greedy_intra_app(app, ["E1", "E2"])
        assert result.assignment == {"s1": "E1"}
        assert result.satisfied_jobs == ["S"]

    def test_budget_defaults_to_quota_minus_held(self):
        j = JobDemand("J", (task("t1", "E1"), task("t2", "E2"), task("t3", "E3")))
        app = make_app([j], quota=4, held=2)
        result = greedy_intra_app(app, ["E1", "E2", "E3"])
        assert len(result.granted) == 2

    def test_task_with_no_available_candidate_skipped(self):
        j = JobDemand("J", (task("t1", "E9"), task("t2", "E1")))
        app = make_app([j], quota=2)
        result = greedy_intra_app(app, ["E1", "E2"])
        assert result.assignment == {"t2": "E1"}
        assert result.satisfied_jobs == []  # job not fully satisfied

    def test_fill_grabs_arbitrary_executors(self):
        j = JobDemand("J", (task("t1", "E1"),))
        app = make_app([j], quota=3)
        result = greedy_intra_app(app, ["E1", "E2", "E3"], fill=True)
        assert sorted(result.granted) == ["E1", "E2", "E3"]
        assert len(result.assignment) == 1

    def test_fill_limit_caps_extras(self):
        j = JobDemand("J", (task("t1", "E1"),))
        app = make_app([j], quota=5)
        result = greedy_intra_app(app, ["E1", "E2", "E3", "E4"], fill=True, fill_limit=1)
        assert len(result.granted) == 2

    def test_no_fill_by_default(self):
        j = JobDemand("J", (task("t1", "E1"),))
        app = make_app([j], quota=5)
        result = greedy_intra_app(app, ["E1", "E2", "E3"])
        assert result.granted == ["E1"]

    def test_negative_budget_rejected(self):
        app = make_app([], quota=1)
        with pytest.raises(ConfigurationError):
            greedy_intra_app(app, [], budget=-1)

    def test_executor_choice_is_deterministic(self):
        j = JobDemand("J", (task("t1", "E2", "E1"),))
        app = make_app([j], quota=1)
        # Picks the candidate earliest in cluster order.
        result = greedy_intra_app(app, ["E1", "E2"])
        assert result.assignment == {"t1": "E1"}


class TestOptimalIntraApp:
    def test_matches_greedy_on_fig4(self):
        j1 = JobDemand("J1", (task("T511", "E1"), task("T512", "E2")))
        j2 = JobDemand("J2", (task("T521", "E3"), task("T522", "E4")))
        app = make_app([j1, j2], quota=2)
        result = optimal_intra_app(app, ["E1", "E2", "E3", "E4"])
        jobs, credit = plan_value(result.assignment, app)
        assert credit == pytest.approx(1.0)  # one full job's worth

    def test_optimal_beats_greedy_on_adversarial_instance(self):
        # Greedy serves the 1-task job with the contested executor E1,
        # starving the 2-task job; the optimum serves the small job from E1
        # too but is free to re-route: construct a case where greedy's strict
        # job order wastes the only flexible executor.
        j_small = JobDemand("S", (task("s1", "E1"),))
        j_big = JobDemand("B", (task("b1", "E1"), task("b2", "E2")))
        app = make_app([j_small, j_big], quota=3)
        greedy = greedy_intra_app(app, ["E1", "E2"])
        optimal = optimal_intra_app(app, ["E1", "E2"])
        g_jobs, g_credit = plan_value(greedy.assignment, app)
        o_jobs, o_credit = plan_value(optimal.assignment, app)
        assert o_credit >= g_credit

    def test_budget_respected(self):
        j = JobDemand("J", (task("t1", "E1"), task("t2", "E2"), task("t3", "E3")))
        app = make_app([j], quota=9)
        result = optimal_intra_app(app, ["E1", "E2", "E3"], budget=2)
        assert len(result.granted) == 2


class TestPlanValue:
    def test_counts_fully_satisfied_jobs(self):
        j1 = JobDemand("J1", (task("t1", "E1"),))
        j2 = JobDemand("J2", (task("t2", "E2"), task("t3", "E3")))
        app = make_app([j1, j2])
        jobs, credit = plan_value({"t1": "E1", "t2": "E2"}, app)
        assert jobs == 1
        assert credit == pytest.approx(1.0 + 0.5)

    def test_total_tasks_weighting(self):
        # A job with 4 total tasks but only 1 unsatisfied: the single promise
        # contributes 1/4 credit but completes the job.
        j = JobDemand("J", (task("t1", "E1"),), total_tasks=4)
        app = make_app([j])
        jobs, credit = plan_value({"t1": "E1"}, app)
        assert jobs == 1
        assert credit == pytest.approx(0.25)
