"""Matching solvers: greedy 2-approximation vs exact min-cost-flow optimum."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.matching import (
    greedy_weighted_matching,
    max_weight_matching_with_budget,
)
from repro.core.matching import matching_weight


class TestGreedy:
    def test_takes_heaviest_edges_first(self):
        edges = [("t1", "e1", 1.0), ("t2", "e1", 5.0)]
        assert greedy_weighted_matching(edges) == {"t2": "e1"}

    def test_respects_matching_constraints(self):
        edges = [("t1", "e1", 3.0), ("t1", "e2", 2.0), ("t2", "e1", 2.0)]
        # t1 takes e1 (heaviest); t2's only candidate e1 is then used.
        assert greedy_weighted_matching(edges) == {"t1": "e1"}

    def test_budget_caps_pairs(self):
        edges = [(f"t{i}", f"e{i}", 1.0) for i in range(5)]
        m = greedy_weighted_matching(edges, budget=2)
        assert len(m) == 2

    def test_zero_budget(self):
        assert greedy_weighted_matching([("t", "e", 1.0)], budget=0) == {}

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_weighted_matching([], budget=-1)

    def test_deterministic_tie_break(self):
        edges = [("t2", "e2", 1.0), ("t1", "e1", 1.0), ("t1", "e2", 1.0)]
        m1 = greedy_weighted_matching(edges)
        m2 = greedy_weighted_matching(list(reversed(edges)))
        assert m1 == m2 == {"t1": "e1", "t2": "e2"}

    def test_classic_half_approximation_instance(self):
        # Greedy grabs the heavy middle edge and blocks both ends:
        # greedy = 2.0, optimum = 1.9 + 1.9 = 3.8 -> ratio just above 1/2.
        edges = [("t1", "e1", 1.9), ("t1", "e2", 2.0), ("t2", "e2", 1.9)]
        greedy = greedy_weighted_matching(edges)
        optimal = max_weight_matching_with_budget(edges)
        gw = matching_weight(greedy, edges)
        ow = matching_weight(optimal, edges)
        assert gw == pytest.approx(2.0)
        assert ow == pytest.approx(3.8)
        assert gw >= 0.5 * ow


class TestOptimal:
    def test_finds_true_optimum(self):
        edges = [("t1", "e1", 1.0), ("t1", "e2", 3.0), ("t2", "e2", 3.0), ("t2", "e1", 1.0)]
        m = max_weight_matching_with_budget(edges)
        assert matching_weight(m, edges) == pytest.approx(4.0)

    def test_budget_respected(self):
        edges = [(f"t{i}", f"e{i}", float(i + 1)) for i in range(4)]
        m = max_weight_matching_with_budget(edges, budget=2)
        assert len(m) == 2
        # Picks the two heaviest independent edges.
        assert matching_weight(m, edges) == pytest.approx(3.0 + 4.0)

    def test_empty_inputs(self):
        assert max_weight_matching_with_budget([]) == {}
        assert max_weight_matching_with_budget([("t", "e", 1.0)], budget=0) == {}

    def test_duplicate_edges_keep_heaviest(self):
        edges = [("t1", "e1", 1.0), ("t1", "e1", 9.0)]
        m = max_weight_matching_with_budget(edges)
        assert matching_weight(m, edges) == pytest.approx(9.0)

    def test_matching_is_feasible(self):
        edges = [
            ("t1", "e1", 1.0), ("t1", "e2", 1.0),
            ("t2", "e1", 1.0), ("t3", "e2", 1.0),
        ]
        m = max_weight_matching_with_budget(edges)
        executors = list(m.values())
        assert len(executors) == len(set(executors))
        for t, e in m.items():
            assert (t, e) in {(a, b) for a, b, _ in edges}

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            max_weight_matching_with_budget([], budget=-2)


class TestApproximationGuarantee:
    def test_greedy_within_half_on_random_instances(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for trial in range(25):
            n_tasks, n_execs = int(rng.integers(2, 8)), int(rng.integers(2, 8))
            edges = []
            for t in range(n_tasks):
                for e in range(n_execs):
                    if rng.random() < 0.5:
                        edges.append((f"t{t}", f"e{e}", float(rng.integers(1, 10))))
            if not edges:
                continue
            budget = int(rng.integers(1, n_tasks + 1))
            gw = matching_weight(
                greedy_weighted_matching(edges, budget=budget), edges
            )
            ow = matching_weight(
                max_weight_matching_with_budget(edges, budget=budget), edges
            )
            assert gw >= 0.5 * ow - 1e-9, f"trial {trial}: {gw} < 0.5*{ow}"


def test_matching_weight_rejects_non_edges():
    with pytest.raises(ConfigurationError):
        matching_weight({"t": "e"}, [("t", "other", 1.0)])
