"""End-to-end equivalence of the allocation control planes.

``--alloc-engine incremental`` (the default) must be a pure optimisation:
for every manager, a full experiment run under either engine — at the same
coalescing setting — produces identical metrics.  Coalescing itself is
pinned separately: the runner's default (on) must match per-event rounds
for the standard scenarios.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def small_config(**kw):
    return ExperimentConfig(
        workload="wordcount",
        num_nodes=8,
        num_apps=2,
        jobs_per_app=3,
        seed=13,
        **kw,
    )


@pytest.mark.parametrize("manager", ["custody", "standalone", "yarn", "mesos"])
def test_engines_produce_identical_metrics(manager):
    results = {
        engine: run_experiment(small_config(manager=manager, alloc_engine=engine))
        for engine in ("incremental", "reference")
    }
    inc, ref = results["incremental"], results["reference"]
    assert inc.metrics.as_dict() == ref.metrics.as_dict()
    assert inc.sim_time == ref.sim_time
    assert inc.allocation_rounds == ref.allocation_rounds


def test_coalescing_default_matches_per_event_rounds():
    """The runner's coalesced rounds decide like per-event rounds here."""
    coalesced = run_experiment(small_config(manager="custody", alloc_coalesce=True))
    per_event = run_experiment(small_config(manager="custody", alloc_coalesce=False))
    assert coalesced.metrics.as_dict() == per_event.metrics.as_dict()
    assert coalesced.sim_time == per_event.sim_time


def test_alloc_counters_populate_under_perf_counters():
    result = run_experiment(
        small_config(manager="custody", perf_counters=True)
    )
    assert result.perf is not None
    assert result.perf.alloc_rounds > 0
    assert result.perf.alloc_seconds > 0.0
    # The default engine serves demands from the cache at least sometimes.
    assert result.perf.demand_cache_hits > 0
    payload = result.perf.as_dict()
    for key in (
        "alloc_rounds",
        "alloc_rounds_coalesced",
        "demand_cache_hits",
        "demand_cache_misses",
        "demand_cache_hit_rate",
        "alloc_seconds",
    ):
        assert key in payload


def test_config_validates_alloc_engine():
    with pytest.raises(Exception, match="alloc_engine"):
        small_config(alloc_engine="bogus")
    config = small_config(alloc_engine="reference")
    assert dataclasses.replace(config, alloc_engine="incremental").alloc_coalesce


def test_reference_engine_reachable_from_cli_flags():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["run", "--manager", "custody", "--alloc-engine", "reference",
         "--per-event-alloc"]
    )
    assert args.alloc_engine == "reference"
    assert args.per_event_alloc is True
