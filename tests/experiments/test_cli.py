"""CLI: argument parsing and command execution."""

import json

import pytest

from repro.cli import build_parser, main

FAST = ["--nodes", "10", "--apps", "2", "--jobs-per-app", "2", "--seed", "1"]


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.manager == "custody"
        assert args.workload == "wordcount"

    def test_bad_manager_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--manager", "k8s"])

    def test_figures_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--manager", "standalone", *FAST]) == 0
        out = capsys.readouterr().out
        assert "standalone" in out
        assert "allocation rounds" in out

    def test_run_with_save(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert main(["run", *FAST, "--save", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["config"]["manager"] == "custody"

    def test_run_with_utilization(self, capsys):
        assert main(["run", *FAST, "--utilization"]) == 0
        assert "slot utilization" in capsys.readouterr().out

    def test_run_with_features(self, capsys):
        assert main(
            ["run", *FAST, "--speculation", "--kmn", "0.9", "--cache-gb", "1"]
        ) == 0

    def test_compare(self, capsys):
        assert main(["compare", "--managers", "standalone,custody", *FAST]) == 0
        out = capsys.readouterr().out
        assert "standalone" in out and "custody" in out

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "Fig. 5" in out

    def test_figures_9(self, capsys):
        assert main(["figures", "--figure", "9", "--jobs-per-app", "2", "--apps", "2"]) == 0
        assert "Fig. 9" in capsys.readouterr().out
