"""ExperimentConfig validation and conveniences."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB, GBPS, MB
from repro.experiments.config import ExperimentConfig


def test_paper_defaults():
    c = ExperimentConfig()
    assert c.num_nodes == 100
    assert c.num_apps == 4
    assert c.jobs_per_app == 30
    assert c.mean_interarrival == 14.0
    assert c.block_size == 128 * MB
    assert c.replication == 3
    assert c.uplink == 2 * GBPS
    assert c.downlink == 40 * GBPS
    assert c.scheduler == "delay"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"manager": "kubernetes"},
        {"scheduler": "magic"},
        {"placement": "best"},
        {"workload": "teragen"},
        {"num_apps": 0},
        {"jobs_per_app": 0},
        {"replication": 0},
    ],
)
def test_invalid_configs(kwargs):
    with pytest.raises(ConfigurationError):
        ExperimentConfig(**kwargs)


def test_app_ids_deterministic():
    c = ExperimentConfig(num_apps=3)
    assert c.app_ids == ("app-00", "app-01", "app-02")


def test_with_manager_preserves_everything_else():
    c = ExperimentConfig(workload="sort", seed=9)
    d = c.with_manager("standalone")
    assert d.manager == "standalone"
    assert d.workload == "sort"
    assert d.seed == 9


def test_scaled():
    c = ExperimentConfig(jobs_per_app=30)
    assert c.scaled(0.1).jobs_per_app == 3
    assert c.scaled(0.001).jobs_per_app == 1  # floor of one job
    with pytest.raises(ConfigurationError):
        c.scaled(0.0)


def test_frozen():
    c = ExperimentConfig()
    with pytest.raises(Exception):
        c.manager = "other"
