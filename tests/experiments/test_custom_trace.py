"""Replaying caller-supplied submission traces."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.trace import SubmissionEvent, SubmissionTrace

BASE = ExperimentConfig(
    manager="custody", workload="pagerank", num_nodes=10,
    num_apps=2, jobs_per_app=3, seed=5,
)


def make_trace():
    return SubmissionTrace(
        [
            SubmissionEvent(0.0, "app-00", 0),
            SubmissionEvent(10.0, "app-01", 0),
            SubmissionEvent(20.0, "app-00", 1),
        ]
    )


def test_custom_trace_drives_submissions():
    result = run_experiment(BASE, trace=make_trace())
    counts = {a.app_id: len(a.jobs) for a in result.apps}
    assert counts == {"app-00": 2, "app-01": 1}
    assert result.metrics.finished_jobs == 3


def test_submission_times_respected():
    result = run_experiment(BASE, trace=make_trace())
    by_app = {a.app_id: a for a in result.apps}
    assert by_app["app-00"].jobs[0].submitted_at == pytest.approx(0.0)
    assert by_app["app-01"].jobs[0].submitted_at == pytest.approx(10.0)
    assert by_app["app-00"].jobs[1].submitted_at == pytest.approx(20.0)


def test_unknown_app_rejected():
    bad = SubmissionTrace([SubmissionEvent(0.0, "ghost", 0)])
    with pytest.raises(ConfigurationError):
        run_experiment(BASE, trace=bad)


def test_round_tripped_trace_reproduces_run():
    trace = make_trace()
    r1 = run_experiment(BASE, trace=trace)
    rebuilt = SubmissionTrace.from_records(trace.to_records())
    r2 = run_experiment(BASE, trace=rebuilt)
    assert r1.metrics == r2.metrics
