"""Figure drivers produce the right rows (tiny scale for CI)."""

import pytest

from repro.experiments.figures import (
    figure7_locality,
    figure8_jct,
    figure9_input_stage,
    figure10_scheduler_delay,
    headline_numbers,
    run_policy_comparison,
)
from repro.experiments.config import ExperimentConfig

TINY = dict(jobs_per_app=2, num_apps=2, seed=5)


def test_run_policy_comparison_shares_the_trace():
    base = ExperimentConfig(
        workload="wordcount", num_nodes=10, manager="custody", **TINY
    )
    results = run_policy_comparison(base, policies=("standalone", "custody"))
    assert set(results) == {"standalone", "custody"}
    assert (
        results["standalone"].metrics.finished_jobs
        == results["custody"].metrics.finished_jobs
        == 4
    )


def test_figure7_rows_have_expected_shape():
    rows = figure7_locality(cluster_sizes=(10,), workloads=("pagerank",), **TINY)
    assert len(rows) == 1
    row = rows[0]
    assert row["figure"] == "7"
    assert 0.0 <= row["spark_locality"] <= 1.0
    assert 0.0 <= row["custody_locality"] <= 1.0
    assert row["gain"] == pytest.approx(
        (row["custody_locality"] - row["spark_locality"]) / row["spark_locality"]
    )


def test_figure8_rows(tmp_path):
    rows = figure8_jct(cluster_sizes=(10,), workloads=("wordcount",), **TINY)
    row = rows[0]
    assert row["spark_jct"] > 0
    assert row["custody_jct"] > 0
    assert row["reduction"] == pytest.approx(
        (row["spark_jct"] - row["custody_jct"]) / row["spark_jct"]
    )


def test_figure9_rows():
    rows = figure9_input_stage(workloads=("sort",), num_nodes=10, **TINY)
    assert rows[0]["figure"] == "9"
    assert rows[0]["spark_input_stage"] > 0
    assert rows[0]["custody_input_stage"] > 0


def test_figure10_rows():
    rows = figure10_scheduler_delay(cluster_sizes=(10,), workload="wordcount", **TINY)
    assert rows[0]["figure"] == "10"
    assert rows[0]["spark_delay"] >= 0
    assert rows[0]["custody_delay"] >= 0


def test_headline_numbers_structure():
    summary = headline_numbers(num_nodes=10, workloads=("wordcount",), **TINY)
    assert set(summary) >= {"locality_gain_mean", "jct_reduction_mean"}
    assert len(summary["locality_gains"]) == 1
