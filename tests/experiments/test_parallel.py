"""Parallel fan-out: shard engine, merge ordering, CLI byte-identity.

The determinism contract under test: whatever ``--jobs`` a sweep runs
with — and whatever order the workers happen to finish in — the merged
artifacts are the ones the serial loop produces.
"""

import json
import random

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    Shard,
    merge_by_key,
    run_chaos_sweep,
    run_grid,
    run_sharded,
    run_validation_suite,
    shard_streams,
)
from repro.experiments.scenarios import chaos_sweep
from repro.experiments.sweeps import sweep

pytestmark = pytest.mark.parallel


def _square(payload):
    return payload * payload


class TestShardEngine:
    def test_inline_fallback_matches_key_order(self):
        shards = [Shard(key=(i,), payload=i) for i in (3, 0, 2, 1)]
        assert run_sharded(_square, shards, jobs=1) == [0, 1, 4, 9]

    def test_pool_matches_inline(self):
        shards = [Shard(key=(i,), payload=i) for i in range(6)]
        assert run_sharded(_square, shards, jobs=3) == run_sharded(
            _square, shards, jobs=1
        )

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_sharded(_square, [Shard(key=(0,), payload=1)], jobs=0)

    def test_merge_is_completion_order_invariant(self):
        """The regression the merge exists for: shuffle every possible
        completion order and assert the merged list never changes."""
        tagged = [((i,), f"result-{i}") for i in range(8)]
        expected = [f"result-{i}" for i in range(8)]
        rng = random.Random(7)
        for _ in range(50):
            shuffled = list(tagged)
            rng.shuffle(shuffled)
            assert merge_by_key(shuffled) == expected

    def test_merge_orders_compound_keys(self):
        tagged = [((1, 0), "b"), ((0, 1), "a2"), ((0, 0), "a1"), ((1, 1), "c")]
        assert merge_by_key(tagged) == ["a1", "a2", "b", "c"]


class TestShardStreams:
    def test_same_key_same_streams(self):
        a = shard_streams(42, (3, 1))
        b = shard_streams(42, (3, 1))
        assert a.get("x").random() == b.get("x").random()

    def test_distinct_keys_distinct_streams(self):
        draws = {
            shard_streams(42, key).get("x").random()
            for key in [(0,), (1,), (0, 0), (0, 1), (1, 0)]
        }
        assert len(draws) == 5

    def test_derivation_is_order_free(self):
        """Deriving shard 2's streams is independent of which other shards
        were derived before it — no hidden global state."""
        lone = shard_streams(9, (2,)).get("draw").random()
        for other in [(0,), (1,), (3,)]:
            shard_streams(9, other).get("draw").random()
        assert shard_streams(9, (2,)).get("draw").random() == lone


@pytest.fixture(scope="module")
def chaos_base():
    return ExperimentConfig(
        manager="custody",
        workload="wordcount",
        num_nodes=10,
        num_apps=2,
        jobs_per_app=2,
        seed=3,
        detector_timeout=10.0,
    )


class TestChaosSweepParallel:
    def test_matches_serial_chaos_sweep(self, chaos_base):
        serial = chaos_sweep(
            chaos_base, levels=[0, 1], managers=["custody", "yarn"],
            horizon=40.0,
        )
        parallel = run_chaos_sweep(
            chaos_base, levels=[0, 1], managers=["custody", "yarn"],
            horizon=40.0, jobs=2,
        )
        assert parallel.cells == serial.cells

    def test_payloads_align_with_cells(self, chaos_base):
        result = run_chaos_sweep(
            chaos_base, levels=[1], managers=["custody", "standalone"],
            horizon=40.0, jobs=2,
        )
        assert [(p["manager"], p["level"]) for p in result.payloads] == [
            (c.manager, c.level) for c in result.cells
        ]
        for payload in result.payloads:
            assert payload["result"]["metrics"]["unfinished_jobs"] == 0
            assert payload["lost_tasks"] == 0


class TestValidationSuiteParallel:
    def test_matches_serial_run_suite(self):
        from repro.scenarios import ScenarioProfile, run_suite

        profile = ScenarioProfile(smoke=True, seed=0)
        names = ["littles_law", "mm1"]
        serial = run_suite(names, profile)
        parallel = run_validation_suite(names, profile, jobs=2)
        # wall_seconds is wall-clock (differs between any two runs, serial
        # included); everything else must round-trip exactly.
        strip = lambda r: {k: v for k, v in r.as_dict().items()
                           if k != "wall_seconds"}
        assert [strip(r) for r in parallel.results] == [
            strip(r) for r in serial.results
        ]


class TestGridParallel:
    def test_matches_serial_sweep(self):
        base = ExperimentConfig(
            workload="wordcount", num_nodes=10, num_apps=2, jobs_per_app=2
        )
        grid = {"manager": ["standalone", "custody"]}
        assert sweep(base, grid, repeats=2, jobs=2) == sweep(
            base, grid, repeats=2
        )

    def test_custom_extractors_rejected_in_parallel(self):
        base = ExperimentConfig(num_nodes=10, num_apps=2, jobs_per_app=2)
        with pytest.raises(ConfigurationError):
            sweep(base, {"manager": ["custody"]},
                  extract={"x": lambda r: 0}, jobs=2)

    def test_unknown_field_rejected(self):
        base = ExperimentConfig(num_nodes=10, num_apps=2, jobs_per_app=2)
        with pytest.raises(ConfigurationError):
            run_grid(base, {"no_such_field": [1]}, jobs=2)


class TestCliByteIdentity:
    FAST = ["--nodes", "10", "--apps", "2", "--jobs-per-app", "2",
            "--seed", "1", "--levels", "0,1", "--managers",
            "custody,standalone", "--horizon", "40"]

    def test_chaos_json_identical_across_jobs(self, tmp_path, capsys):
        serial, fanned = tmp_path / "j1.json", tmp_path / "j2.json"
        assert main(["chaos", *self.FAST, "--json", str(serial)]) == 0
        assert main(["chaos", *self.FAST, "--jobs", "2",
                     "--json", str(fanned)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == fanned.read_bytes()

    def test_chaos_traces_identical_across_jobs(self, tmp_path, capsys):
        args = ["--nodes", "10", "--apps", "2", "--jobs-per-app", "2",
                "--seed", "1", "--levels", "1", "--managers", "custody",
                "--horizon", "40"]
        t1, t2 = tmp_path / "a.trace.json", tmp_path / "b.trace.json"
        assert main(["chaos", *args, "--trace", str(t1)]) == 0
        assert main(["chaos", *args, "--jobs", "2", "--trace", str(t2)]) == 0
        capsys.readouterr()
        read = lambda p: json.loads(
            p.with_name(f"{p.stem}.custody.L1{p.suffix}").read_text()
        )
        assert read(t1) == read(t2)

    def test_sweep_csv_identical_across_jobs(self, tmp_path, capsys):
        args = ["sweep", "--nodes", "10", "--apps", "2", "--jobs-per-app",
                "2", "--grid", "manager=standalone,custody", "--repeats", "2"]
        c1, c2 = tmp_path / "s1.csv", tmp_path / "s2.csv"
        assert main([*args, "--csv", str(c1)]) == 0
        assert main([*args, "--jobs", "2", "--csv", str(c2)]) == 0
        capsys.readouterr()
        assert c1.read_bytes() == c2.read_bytes()

    def test_sweep_requires_grid(self, capsys):
        assert main(["sweep", "--nodes", "10"]) == 2
        assert "--grid" in capsys.readouterr().err

    def test_sweep_rejects_bad_grid_field(self, capsys):
        assert main(["sweep", "--grid", "bogus_field=1,2"]) == 2
        assert "bogus_field" in capsys.readouterr().err
