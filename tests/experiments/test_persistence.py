"""JSON persistence of experiment results and timelines."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import (
    export_timeline,
    load_result,
    load_timeline_records,
    result_to_dict,
    save_result,
)
from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(
        manager="custody", workload="pagerank", num_nodes=10,
        num_apps=2, jobs_per_app=2, seed=2, timeline_enabled=True,
    )
    return run_experiment(config)


def test_result_to_dict_is_json_serialisable(result):
    payload = result_to_dict(result)
    text = json.dumps(payload)
    assert "custody" in text


def test_round_trip(result, tmp_path):
    path = save_result(result, tmp_path / "result.json")
    loaded = load_result(path)
    assert loaded["config"] == result.config
    assert loaded["metrics"] == result.metrics
    assert loaded["sim_time"] == result.sim_time
    assert loaded["allocation_rounds"] == result.allocation_rounds


def test_version_check(result, tmp_path):
    path = save_result(result, tmp_path / "result.json")
    data = json.loads(path.read_text())
    data["format_version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(ConfigurationError):
        load_result(path)


def _downgrade_to_v1(data):
    """Rewrite a v2 payload into the v1 shape: no nested section markers,
    no derived metric fields, no speculation counters or extra sections."""
    v1 = {
        "format_version": 1,
        "config": data["config"],
        "metrics": dict(data["metrics"]),
        "sim_time": data["sim_time"],
        "allocation_rounds": data["allocation_rounds"],
    }
    v1["metrics"].pop("format_version", None)
    v1["metrics"].pop("min_local_job_fraction", None)
    return v1


class TestBackwardCompat:
    def test_v1_snapshot_loads_through_v2_loader(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        v1 = _downgrade_to_v1(json.loads(path.read_text()))
        path.write_text(json.dumps(v1))
        loaded = load_result(path)
        assert loaded["config"] == result.config
        assert loaded["metrics"] == result.metrics
        assert loaded["sim_time"] == result.sim_time
        # v1 predates speculation counters: they migrate to zero.
        assert loaded["speculative_launches"] == 0
        assert loaded["speculative_wins"] == 0
        assert loaded["metrics_snapshot"] is None

    @pytest.mark.parametrize("version", [0, 3, "2", None])
    def test_unreadable_version_names_itself(self, result, tmp_path, version):
        path = save_result(result, tmp_path / "result.json")
        data = json.loads(path.read_text())
        if version is None:
            del data["format_version"]
        else:
            data["format_version"] = version
        path.write_text(json.dumps(data))
        with pytest.raises(
            ConfigurationError,
            match=f"unsupported result format version {version!r}",
        ):
            load_result(path)

    def test_error_lists_readable_versions(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        data = json.loads(path.read_text())
        data["format_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError, match=r"\(1, 2\)"):
            load_result(path)


def test_timeline_export_round_trip(result, tmp_path):
    path = export_timeline(result.timeline, tmp_path / "timeline.jsonl")
    records = load_timeline_records(path)
    assert len(records) == len(result.timeline)
    assert records[0]["kind"] == result.timeline[0].kind
    kinds = {r["kind"] for r in records}
    assert "job.finish" in kinds


def test_timeline_lines_are_individual_json(result, tmp_path):
    path = export_timeline(result.timeline, tmp_path / "timeline.jsonl")
    with path.open() as fh:
        first = fh.readline()
    json.loads(first)  # every line parses standalone
