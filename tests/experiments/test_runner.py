"""End-to-end experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

SMALL = dict(num_nodes=10, num_apps=2, jobs_per_app=2, seed=3, workload="pagerank")


@pytest.mark.parametrize("manager", ["standalone", "custody", "yarn", "mesos"])
def test_all_managers_finish_every_job(manager):
    result = run_experiment(ExperimentConfig(manager=manager, **SMALL))
    assert result.metrics.unfinished_jobs == 0
    assert result.metrics.finished_jobs == 4


def test_result_carries_config_and_apps():
    config = ExperimentConfig(manager="custody", **SMALL)
    result = run_experiment(config)
    assert result.config is config
    assert [a.app_id for a in result.apps] == ["app-00", "app-01"]
    assert result.sim_time > 0


def test_same_seed_reproduces_metrics():
    config = ExperimentConfig(manager="custody", **SMALL)
    r1 = run_experiment(config)
    r2 = run_experiment(config)
    assert r1.metrics == r2.metrics


def test_workload_structures_identical_across_managers():
    """The common-schedule methodology: same jobs regardless of policy."""
    base = ExperimentConfig(manager="custody", **SMALL)
    r_custody = run_experiment(base)
    r_spark = run_experiment(base.with_manager("standalone"))

    def shape(result):
        return [
            (j.job_id, j.num_input_tasks, len(j.stages), round(j.submitted_at, 9))
            for a in result.apps
            for j in a.jobs
        ]

    assert shape(r_custody) == shape(r_spark)


def test_timeline_disabled_by_default():
    result = run_experiment(ExperimentConfig(manager="custody", **SMALL))
    assert result.timeline is None


def test_timeline_enabled_records_events():
    config = ExperimentConfig(manager="custody", timeline_enabled=True, **SMALL)
    result = run_experiment(config)
    assert result.timeline is not None
    assert len(result.timeline.of_kind("job.finish")) == 4


def test_validated_plans_run_clean():
    config = ExperimentConfig(manager="custody", validate_plans=True, **SMALL)
    result = run_experiment(config)
    assert result.metrics.unfinished_jobs == 0


def test_fifo_scheduler_variant():
    config = ExperimentConfig(manager="custody", scheduler="fifo", **SMALL)
    result = run_experiment(config)
    assert result.metrics.unfinished_jobs == 0


@pytest.mark.parametrize("placement", ["random", "rack-aware", "popularity"])
def test_placement_variants(placement):
    config = ExperimentConfig(manager="custody", placement=placement, **SMALL)
    result = run_experiment(config)
    assert result.metrics.unfinished_jobs == 0


def test_different_seeds_differ():
    a = run_experiment(ExperimentConfig(manager="standalone", **SMALL))
    b = run_experiment(
        ExperimentConfig(manager="standalone", **{**SMALL, "seed": 99})
    )
    assert a.metrics != b.metrics
