"""The paper's worked micro-examples must reproduce exactly."""

import pytest

from repro.experiments.scenarios import (
    fig1_motivating_example,
    fig3_interapp_example,
    fig45_intraapp_example,
)


class TestFig1:
    def test_data_unaware_achieves_half(self):
        result = fig1_motivating_example()
        assert result.data_unaware == {"A1": 0.5, "A2": 0.5}

    def test_data_aware_achieves_full_locality(self):
        result = fig1_motivating_example()
        assert result.data_aware == {"A1": 1.0, "A2": 1.0}


class TestFig3:
    def test_naive_fairness_starves_one_app(self):
        result = fig3_interapp_example()
        assert sorted(result.naive_fair.values()) == [0, 2]

    def test_locality_fairness_gives_one_local_job_each(self):
        result = fig3_interapp_example()
        assert result.locality_fair == {"A3": 1, "A4": 1}


class TestFig45:
    def test_fairness_strategy_averages_two_time_units(self):
        result = fig45_intraapp_example()
        assert result.fairness_avg == pytest.approx(2.0, abs=1e-6)
        assert result.fairness_jcts == (
            pytest.approx(2.0, abs=1e-6),
            pytest.approx(2.0, abs=1e-6),
        )

    def test_priority_strategy_averages_one_and_a_quarter(self):
        result = fig45_intraapp_example()
        assert result.priority_avg == pytest.approx(1.25, abs=1e-6)
        assert result.priority_jcts[0] == pytest.approx(0.5, abs=1e-6)
        assert result.priority_jcts[1] == pytest.approx(2.0, abs=1e-6)

    def test_priority_beats_fairness_without_slowing_job2(self):
        result = fig45_intraapp_example()
        assert result.priority_avg < result.fairness_avg
        assert result.priority_jcts[1] <= result.fairness_jcts[1] + 1e-6
