"""Parameter sweep utility."""

import csv

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import DEFAULT_EXTRACTORS, rows_to_csv, sweep

BASE = ExperimentConfig(
    workload="pagerank", num_nodes=10, num_apps=2, jobs_per_app=2, seed=3
)


@pytest.fixture(scope="module")
def rows():
    return sweep(
        BASE,
        grid={"manager": ["standalone", "custody"]},
        extract={"locality": DEFAULT_EXTRACTORS["locality"]},
    )


def test_one_row_per_grid_point(rows):
    assert len(rows) == 2
    assert {r["manager"] for r in rows} == {"standalone", "custody"}


def test_rows_carry_parameters_and_metrics(rows):
    for row in rows:
        assert 0.0 <= row["locality"] <= 1.0
        assert row["seed"] == 3


def test_cartesian_product():
    rows = sweep(
        BASE,
        grid={"manager": ["standalone", "custody"], "num_nodes": [8, 10]},
        extract={"jct": DEFAULT_EXTRACTORS["jct"]},
    )
    assert len(rows) == 4
    assert {(r["manager"], r["num_nodes"]) for r in rows} == {
        ("standalone", 8), ("standalone", 10), ("custody", 8), ("custody", 10),
    }


def test_repeats_vary_seed():
    rows = sweep(
        BASE,
        grid={"manager": ["custody"]},
        extract={"jct": DEFAULT_EXTRACTORS["jct"]},
        repeats=2,
    )
    assert [r["seed"] for r in rows] == [3, 4]


def test_unknown_field_rejected():
    with pytest.raises(ConfigurationError):
        sweep(BASE, grid={"warp_factor": [9]})


def test_empty_grid_rejected():
    with pytest.raises(ConfigurationError):
        sweep(BASE, grid={})


def test_bad_repeats_rejected():
    with pytest.raises(ConfigurationError):
        sweep(BASE, grid={"manager": ["custody"]}, repeats=0)


def test_csv_round_trip(rows, tmp_path):
    path = rows_to_csv(rows, tmp_path / "sweep.csv")
    with path.open() as fh:
        loaded = list(csv.DictReader(fh))
    assert len(loaded) == len(rows)
    assert {r["manager"] for r in loaded} == {"standalone", "custody"}


def test_csv_empty_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        rows_to_csv([], tmp_path / "empty.csv")
