"""AdaptiveFailureDetector: phi-accrual belief over an emission-clock model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.faults.detector import AdaptiveFailureDetector, FailureDetector
from repro.simulation.engine import Simulation

pytestmark = [pytest.mark.faults, pytest.mark.robustness]


def make(**kwargs):
    sim = Simulation()
    kwargs.setdefault("interval", 3.0)
    return sim, AdaptiveFailureDetector(sim, **kwargs)


class TestValidation:
    def test_suspect_after_must_exceed_one_gap(self):
        sim = Simulation()
        with pytest.raises(ConfigurationError):
            AdaptiveFailureDetector(sim, suspect_after=1.0)

    def test_dead_after_must_exceed_suspect_after(self):
        sim = Simulation()
        with pytest.raises(ConfigurationError):
            AdaptiveFailureDetector(sim, suspect_after=3.0, dead_after=3.0)

    def test_window_needs_two_samples(self):
        sim = Simulation()
        with pytest.raises(ConfigurationError):
            AdaptiveFailureDetector(sim, window=1)

    def test_timeout_derives_from_dead_after(self):
        # Consumers planning around `timeout` (re-replication delay) see the
        # nominal detection budget: dead_after healthy gaps.
        _, detector = make(interval=3.0, dead_after=8.0)
        assert detector.timeout == 24.0


class TestHealthy:
    def test_healthy_node_stays_alive(self):
        sim, detector = make()
        sim.run(until=100.0)
        assert detector.phi("worker-000") < 1.0
        assert detector.state("worker-000") == "alive"
        assert not detector.is_suspected("worker-000")

    def test_mean_gap_floors_at_interval(self):
        sim, detector = make(interval=3.0)
        sim.run(until=50.0)
        assert detector.mean_gap("worker-000") == 3.0


class TestSlowdownSuspicion:
    """factor-s slowdown stretches the emission gap to s * interval.

    With a healthy history (mean gap = interval) the silence crosses
    suspect_after mean-gaps mid-stretch, so the node is *suspected*; once
    the stretched arrival lands, the windowed mean adapts and phi drops —
    the node is never declared dead.
    """

    def test_slow_node_suspected_then_adapts(self):
        sim, detector = make(suspect_after=3.0, dead_after=8.0)
        sim.run(until=30.0)
        detector.begin_slow("worker-000", 4.0)
        # Last heartbeat at t=30; next emission at 30 + 4*3 = 42.
        sim.run(until=40.0)
        assert detector.state("worker-000") == "suspected"  # phi = 10/3
        assert detector.suspicions == 1
        sim.run(until=43.0)
        assert detector.state("worker-000") == "alive"  # the 42s arrival landed
        # After the stretched gap enters the window the mean adapts, so the
        # same silence no longer looks suspicious.
        sim.run(until=53.0)
        assert detector.state("worker-000") == "alive"
        assert detector.suspicions == 1
        assert detector.false_positives == 0

    def test_mild_slowdown_never_suspects(self):
        # A stretch below suspect_after gaps stays under the threshold even
        # against the registration-time baseline (max phi = factor), and
        # adaptation only widens the margin from there.
        sim, detector = make(suspect_after=3.0, dead_after=8.0)
        detector.begin_slow("worker-000", 2.0)
        for t in range(1, 60):
            sim.run(until=float(t))
            detector.state("worker-000")
        assert detector.suspicions == 0

    def test_deep_slowdown_is_a_false_positive(self):
        # factor 9 stretches the gap to 27s; phi reaches dead_after=8 before
        # the arrival lands, declaring a node that is actually up.
        sim, detector = make(suspect_after=3.0, dead_after=8.0)
        sim.run(until=30.0)
        detector.begin_slow("worker-000", 9.0)
        sim.run(until=55.0)
        assert detector.state("worker-000") == "dead"  # phi = 25/3 >= 8
        assert detector.false_positives == 1
        sim.run(until=58.0)  # emission at 30 + 27 = 57 clears the belief
        assert detector.state("worker-000") == "alive"

    def test_end_slow_resumes_nominal_emission(self):
        sim, detector = make()
        sim.run(until=30.0)
        detector.begin_slow("worker-000", 4.0)
        sim.run(until=36.0)
        detector.end_slow("worker-000", 4.0)
        # Virtual clock at 36 is 31.5; the pending 33s emission lands
        # 1.5 real seconds after the slowdown ends.
        sim.run(until=38.0)
        assert detector.last_heartbeat("worker-000") == 37.5

    def test_nested_slowdowns_use_max_factor(self):
        sim, detector = make()
        sim.run(until=30.0)
        detector.begin_slow("worker-000", 2.0)
        detector.begin_slow("worker-000", 4.0)
        detector.end_slow("worker-000", 2.0)
        # The deepest window governs: next emission at 30 + 4*3 = 42.
        sim.run(until=41.0)
        assert detector.last_heartbeat("worker-000") == 30.0
        sim.run(until=43.0)
        assert detector.last_heartbeat("worker-000") == 42.0

    def test_unmatched_end_slow_is_noop(self):
        sim, detector = make()
        sim.run(until=10.0)
        detector.end_slow("worker-000", 4.0)
        assert detector.state("worker-000") == "alive"


class TestOutageScoring:
    def test_crash_detected_and_scored_true_positive(self):
        sim, detector = make(suspect_after=3.0, dead_after=8.0)
        sim.run(until=31.0)
        detector.begin_outage("worker-000")
        # Last heartbeat at 30; dead once phi = elapsed/3 >= 8, i.e. t >= 54.
        sim.run(until=50.0)
        assert detector.state("worker-000") == "suspected"
        sim.run(until=55.0)
        assert not detector.is_alive("worker-000")
        detector.end_outage("worker-000")
        assert detector.true_positives == 1
        assert detector.false_negatives == 0

    def test_short_outage_heals_unnoticed_as_false_negative(self):
        sim, detector = make(suspect_after=3.0, dead_after=8.0)
        sim.run(until=31.0)
        detector.begin_outage("worker-000")
        sim.run(until=40.0)
        detector.state("worker-000")  # queried, but phi only reached 10/3
        detector.end_outage("worker-000")
        assert detector.false_negatives == 1
        assert detector.true_positives == 0

    def test_recovery_trusted_from_next_emission(self):
        sim, detector = make(suspect_after=3.0, dead_after=8.0)
        sim.run(until=31.0)
        detector.begin_outage("worker-000")
        sim.run(until=60.0)
        assert not detector.is_alive("worker-000")
        detector.end_outage("worker-000")
        sim.run(until=63.5)  # tick at t=63 got through
        assert detector.is_alive("worker-000")


class TestBaseDetectorHooks:
    def test_base_slow_hooks_are_noops(self):
        sim = Simulation()
        detector = FailureDetector(sim, interval=3.0, timeout=9.0)
        sim.run(until=10.0)
        detector.begin_slow("worker-000", 4.0)
        sim.run(until=30.0)
        assert detector.is_alive("worker-000")
        assert not detector.is_suspected("worker-000")
        detector.end_slow("worker-000", 4.0)
