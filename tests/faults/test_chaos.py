"""Chaos plans and the chaos sweep: determinism and manager comparison."""

import json

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import chaos_sweep
from repro.faults.chaos import build_chaos_plan

pytestmark = pytest.mark.faults


def make_plan(seed=0, **kwargs):
    return build_chaos_plan(10, 2, np.random.default_rng(seed), **kwargs)


class TestChaosPlan:
    def test_same_seed_same_plan(self):
        assert list(make_plan(3)) == list(make_plan(3))

    def test_different_seeds_differ(self):
        assert list(make_plan(1)) != list(make_plan(2))

    def test_counts_respected(self):
        plan = make_plan(
            0, node_failures=2, partitions=3, degradations=1,
            executor_failures=0, slowdowns=0,
        )
        assert len(plan) == 6

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            build_chaos_plan(1, 2, rng)
        with pytest.raises(ConfigurationError):
            build_chaos_plan(10, 2, rng, horizon=0.0)

    def test_short_horizon_supported(self):
        # Regression: executor restart delays must stay well-ordered even
        # when the horizon is shorter than the old fixed 5 s lower bound.
        plan = make_plan(0, horizon=20.0)
        assert len(plan) == 5


class TestChaosDeterminism:
    def test_timeline_byte_identical_across_runs(self):
        """Same seed + same chaos plan => byte-identical event trace."""
        config = ExperimentConfig(
            manager="custody", workload="wordcount", num_nodes=10,
            num_apps=2, jobs_per_app=2, seed=11, timeline_enabled=True,
            detector_timeout=10.0, heartbeat_interval=2.0,
        )
        traces = []
        for _ in range(2):
            plan = build_chaos_plan(
                10, 2, np.random.default_rng(11), horizon=40.0
            )
            result = run_experiment(config, fault_plan=plan)
            traces.append(
                json.dumps([r.as_dict() for r in result.timeline], sort_keys=True)
            )
        assert traces[0] == traces[1]


class TestChaosSweep:
    def test_sweep_covers_grid_and_degrades_gracefully(self):
        base = ExperimentConfig(
            manager="custody", workload="wordcount", num_nodes=10,
            num_apps=2, jobs_per_app=2, seed=5, detector_timeout=10.0,
        )
        sweep = chaos_sweep(
            base, levels=(0, 1), managers=("custody", "yarn"), horizon=40.0
        )
        assert len(sweep.cells) == 4
        for cell in sweep.cells:
            assert cell.unfinished_jobs == 0
        # Level 0 is fault-free: no recovery traffic, no requeues.
        for manager in ("custody", "yarn"):
            baseline = sweep.cell(manager, 0)
            assert baseline.recovery_flows == 0
            assert baseline.tasks_requeued == 0
        # The level-1 plan is identical across managers (common trace):
        # both see the same fault events, hence the same recovery volume.
        c1, y1 = sweep.cell("custody", 1), sweep.cell("yarn", 1)
        assert c1.recovery_flows == y1.recovery_flows
        assert c1.recovery_bytes == pytest.approx(y1.recovery_bytes)
