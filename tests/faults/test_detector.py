"""FailureDetector: the master's heartbeat-delayed view of node liveness."""

import pytest

from repro.common.errors import ConfigurationError
from repro.faults.detector import FailureDetector, NodeHealthHistory
from repro.simulation.engine import Simulation

pytestmark = pytest.mark.faults


def make(interval=3.0, timeout=9.0):
    sim = Simulation()
    return sim, FailureDetector(sim, interval=interval, timeout=timeout)


class TestValidation:
    def test_interval_must_be_positive(self):
        sim = Simulation()
        with pytest.raises(ConfigurationError):
            FailureDetector(sim, interval=0.0, timeout=9.0)

    def test_timeout_below_interval_rejected(self):
        # A timeout shorter than one heartbeat would flap healthy nodes.
        sim = Simulation()
        with pytest.raises(ConfigurationError):
            FailureDetector(sim, interval=5.0, timeout=3.0)

    def test_end_outage_without_begin_rejected(self):
        _, detector = make()
        with pytest.raises(ConfigurationError):
            detector.end_outage("worker-000")


class TestLiveness:
    def test_healthy_node_always_alive(self):
        sim, detector = make()
        sim.run(until=100.0)
        assert detector.is_alive("worker-000")
        assert detector.last_heartbeat("worker-000") == 99.0  # last 3s tick

    def test_outage_detected_only_after_timeout(self):
        sim, detector = make(interval=3.0, timeout=9.0)
        sim.run(until=10.0)
        detector.begin_outage("worker-000")
        # Last heartbeat before the outage landed at t=9.
        sim.run(until=18.0)
        assert detector.is_alive("worker-000")  # 18 - 9 = 9 <= timeout
        sim.run(until=18.5)
        assert not detector.is_alive("worker-000")

    def test_failure_at_time_zero_gets_full_grace(self):
        # Registration counts as the first heartbeat: a node crashing at t=0
        # is suspected only after `timeout`, never retroactively.
        sim, detector = make(interval=3.0, timeout=9.0)
        detector.begin_outage("worker-000")
        sim.run(until=9.0)
        assert detector.is_alive("worker-000")
        sim.run(until=9.5)
        assert not detector.is_alive("worker-000")

    def test_recovery_trusted_from_next_heartbeat(self):
        sim, detector = make(interval=3.0, timeout=9.0)
        sim.run(until=10.0)
        detector.begin_outage("worker-000")
        sim.run(until=30.0)
        assert not detector.is_alive("worker-000")
        detector.end_outage("worker-000")
        sim.run(until=30.2)
        assert detector.is_alive("worker-000")  # tick at t=30 got through

    def test_overlapping_outages_compose(self):
        # Crash + partition on the same node: alive again only after both end.
        sim, detector = make(interval=3.0, timeout=9.0)
        sim.run(until=10.0)
        detector.begin_outage("worker-000")
        sim.run(until=12.0)
        detector.begin_outage("worker-000")
        sim.run(until=20.0)
        detector.end_outage("worker-000")
        sim.run(until=25.0)
        assert not detector.is_alive("worker-000")  # still partitioned
        detector.end_outage("worker-000")
        sim.run(until=27.1)
        assert detector.is_alive("worker-000")

    def test_suspected_dead_filters(self):
        sim, detector = make(interval=3.0, timeout=9.0)
        sim.run(until=10.0)
        detector.begin_outage("worker-001")
        sim.run(until=30.0)
        dead = detector.suspected_dead(["worker-000", "worker-001", "worker-002"])
        assert dead == ["worker-001"]


class TestFailureReports:
    def test_report_marks_dead_immediately(self):
        sim, detector = make(interval=3.0, timeout=9.0)
        sim.run(until=5.0)
        assert detector.is_alive("worker-000")
        detector.report_failure("worker-000")
        assert not detector.is_alive("worker-000")
        assert detector.reported_failures == 1

    def test_report_cleared_by_next_heartbeat(self):
        sim, detector = make(interval=3.0, timeout=9.0)
        sim.run(until=5.0)
        detector.report_failure("worker-000")
        sim.run(until=6.1)  # heartbeat tick at t=6 > report time
        assert detector.is_alive("worker-000")

    def test_report_on_actually_dead_node_stays_dead(self):
        sim, detector = make(interval=3.0, timeout=9.0)
        sim.run(until=10.0)
        detector.begin_outage("worker-000")
        sim.run(until=11.0)
        detector.report_failure("worker-000")
        sim.run(until=15.0)
        # Within the heartbeat grace period, but the failed launch told the
        # master the truth early.
        assert not detector.is_alive("worker-000")


class TestHistory:
    def test_depth_counting(self):
        hist = NodeHealthHistory()
        assert not hist.is_out
        hist.begin(1.0)
        hist.begin(2.0)
        hist.end(3.0)
        assert hist.is_out
        hist.end(4.0)
        assert not hist.is_out
        assert hist.covering_interval(2.5, 10.0) == (1.0, 4.0)
        assert hist.covering_interval(4.0, 10.0) is None  # half-open
