"""Elastic churn plans: capacity floor, determinism, composition."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.faults.elastic import build_churn_plan, merge_plans
from repro.faults.plan import NodeFailure

pytestmark = pytest.mark.faults


def intervals(plan):
    return [(e.at, e.at + e.restart_delay, e.node_id) for e in plan]


class TestBuildChurnPlan:
    def test_produces_node_failures(self):
        plan = build_churn_plan(10, np.random.default_rng(0), events=5)
        assert len(plan) >= 1
        assert all(isinstance(e, NodeFailure) for e in plan)

    def test_node_ids_match_cluster_convention(self):
        plan = build_churn_plan(10, np.random.default_rng(1), events=8)
        for event in plan:
            assert event.node_id.startswith("worker-")
            assert 0 <= int(event.node_id.split("-")[1]) < 10

    def test_capacity_floor_never_violated(self):
        # Aggressive churn on a small cluster: at no instant may more than
        # floor(N·(1−min_alive)) nodes be down simultaneously.
        plan = build_churn_plan(
            5, np.random.default_rng(2), events=40, min_alive_fraction=0.6
        )
        spans = intervals(plan)
        max_down = max(1, int(5 * 0.4))
        # Concurrency only changes at interval starts: check each instant.
        for at, _, _ in spans:
            down = sum(1 for a, u, _ in spans if a <= at < u)
            assert down <= max_down

    def test_same_node_never_killed_while_down(self):
        plan = build_churn_plan(4, np.random.default_rng(3), events=30)
        spans = intervals(plan)
        for i, (a1, u1, n1) in enumerate(spans):
            for a2, u2, n2 in spans[i + 1:]:
                if n1 == n2:
                    assert u1 <= a2 or u2 <= a1, f"{n1} re-killed while down"

    def test_deterministic_under_seed(self):
        p1 = build_churn_plan(12, np.random.default_rng(4), events=6)
        p2 = build_churn_plan(12, np.random.default_rng(4), events=6)
        assert intervals(p1) == intervals(p2)

    def test_always_at_least_one_event(self):
        # Tight floor + tiny cluster: the fallback preemption still fires.
        plan = build_churn_plan(
            2, np.random.default_rng(5), events=1, min_alive_fraction=0.99
        )
        assert len(plan) >= 1

    def test_events_within_horizon(self):
        plan = build_churn_plan(
            10, np.random.default_rng(6), events=10, horizon=100.0
        )
        for event in plan:
            assert 0.0 < event.at < 100.0

    def test_invalid_params(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ConfigurationError):
            build_churn_plan(1, rng)
        with pytest.raises(ConfigurationError):
            build_churn_plan(10, rng, events=0)
        with pytest.raises(ConfigurationError):
            build_churn_plan(10, rng, horizon=0.0)
        with pytest.raises(ConfigurationError):
            build_churn_plan(10, rng, min_alive_fraction=1.0)
        with pytest.raises(ConfigurationError):
            build_churn_plan(10, rng, restart_delay_range=(5.0, 1.0))


class TestMergePlans:
    def test_merges_and_orders(self):
        a = build_churn_plan(10, np.random.default_rng(8), events=3)
        b = build_churn_plan(10, np.random.default_rng(9), events=3)
        merged = merge_plans(a, b)
        assert len(merged) == len(a) + len(b)
        times = [e.at for e in merged]
        assert times == sorted(times)

    def test_empty_merge(self):
        assert len(merge_plans()) == 0


class TestChurnEndToEnd:
    @pytest.mark.slow
    def test_run_survives_churn_without_data_loss(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            manager="custody", workload="wordcount", num_nodes=10,
            num_apps=2, jobs_per_app=3, seed=6, replication=3,
        )
        plan = build_churn_plan(10, np.random.default_rng(10), events=4,
                                horizon=200.0)
        result = run_experiment(config, fault_plan=plan)
        assert result.faults is not None
        assert result.faults.injected >= 1
        assert result.metrics.unfinished_jobs == 0
        assert result.faults.data_loss_tasks == 0
