"""Gray fault kinds through the injector: link flaps and correlated crashes."""

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.injector import FaultInjector
from repro.faults.plan import CorrelatedFailure, FaultPlan, LinkFlap, NodeFailure
from repro.hdfs.filesystem import HDFS
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import Simulation

pytestmark = [pytest.mark.faults, pytest.mark.robustness]


def make_injector(plan, num_nodes=4):
    sim = Simulation()
    fabric = NetworkFabric(sim)
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes), fabric=fabric)
    hdfs = HDFS(cluster)
    return sim, cluster, FaultInjector(sim, cluster, hdfs, plan, fabric=fabric)


class TestLinkFlap:
    def test_reachability_tracks_down_windows(self):
        plan = FaultPlan(
            [LinkFlap(at=10.0, node_id="worker-000", duration=10.0, period=4.0,
                      down_fraction=0.5)]
        )
        sim, _, injector = make_injector(plan)
        # Down phases [10,12), [14,16), [18,20): reachability mirrors them.
        expectations = [
            (11.0, False), (13.0, True), (15.0, False),
            (17.0, True), (19.0, False), (21.0, True),
        ]
        for t, up_expected in expectations:
            sim.run(until=t)
            assert injector.node_reachable("worker-000") is up_expected, t
            assert injector.link_flapping("worker-000") is not up_expected, t

    def test_flap_mttr_spans_the_episode(self):
        plan = FaultPlan(
            [LinkFlap(at=10.0, node_id="worker-000", duration=10.0, period=4.0,
                      down_fraction=0.5)]
        )
        sim, _, injector = make_injector(plan)
        sim.run(until=30.0)
        # One healed episode, measured from injection to the last up edge.
        assert injector.mttr["flap"] == [10.0]
        assert injector.injected == 1

    def test_flap_never_crashes_the_node(self):
        plan = FaultPlan(
            [LinkFlap(at=5.0, node_id="worker-000", duration=8.0, period=4.0,
                      down_fraction=0.5)]
        )
        sim, cluster, injector = make_injector(plan)
        sim.run(until=6.0)
        assert not injector.node_down("worker-000")  # unreachable != dead
        assert all(e.healthy for e in cluster.executors_on("worker-000"))


class TestCorrelatedFailure:
    def test_group_crashes_and_restores_together(self):
        plan = FaultPlan(
            [CorrelatedFailure(at=5.0, node_ids=("worker-000", "worker-001"),
                               restart_delay=10.0)]
        )
        sim, cluster, injector = make_injector(plan)
        sim.run(until=6.0)
        assert injector.node_down("worker-000")
        assert injector.node_down("worker-001")
        assert not injector.node_down("worker-002")
        assert not any(e.healthy for e in cluster.executors_on("worker-000"))
        sim.run(until=16.0)
        assert not injector.node_down("worker-000")
        assert not injector.node_down("worker-001")
        assert all(e.healthy for e in cluster.executors_on("worker-001"))
        # Every member contributes one repair sample under the group kind.
        assert injector.mttr["correlated"] == [10.0, 10.0]

    def test_member_already_down_is_not_double_crashed(self):
        plan = FaultPlan(
            [
                NodeFailure(at=5.0, node_id="worker-000", restart_delay=20.0),
                CorrelatedFailure(at=6.0, node_ids=("worker-000", "worker-001"),
                                  restart_delay=5.0),
            ]
        )
        sim, _, injector = make_injector(plan)
        sim.run(until=12.0)
        # worker-000 keeps its original (longer) outage; worker-001 healed.
        assert injector.node_down("worker-000")
        assert not injector.node_down("worker-001")
        sim.run(until=30.0)
        assert injector.mttr["node"] == [20.0]
        assert injector.mttr["correlated"] == [5.0]


class TestEndToEnd:
    def test_gray_plan_drains_under_custody(self):
        plan = FaultPlan(
            [
                LinkFlap(at=8.0, node_id="worker-003", duration=12.0, period=4.0,
                         down_fraction=0.5),
                CorrelatedFailure(at=15.0,
                                  node_ids=("worker-004", "worker-005"),
                                  restart_delay=12.0),
            ]
        )
        config = ExperimentConfig(
            manager="custody", workload="sort", num_nodes=12, num_apps=2,
            jobs_per_app=3, seed=6, detector_timeout=10.0,
            detector_mode="adaptive", circuit_breaker=True,
            blacklist_timeout=10.0, hedging=True,
        )
        result = run_experiment(config, fault_plan=plan)
        assert result.metrics.unfinished_jobs == 0
        injector = result.fault_injector
        assert injector is not None
        assert set(injector.mttr) == {"flap", "correlated"}
        assert all(sample > 0 for kind in injector.mttr.values() for sample in kind)
