"""FaultInjector behaviour on the full stack."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import DiskFailure, ExecutorFailure, FaultPlan, NodeSlowdown

pytestmark = pytest.mark.faults

BASE = dict(
    manager="custody", workload="sort", num_nodes=12, num_apps=2,
    jobs_per_app=3, seed=6,
)


def run_with(plan, **overrides):
    return run_experiment(
        ExperimentConfig(**{**BASE, **overrides}), fault_plan=plan
    )


class TestNodeSlowdown:
    def test_slowdown_lengthens_jcts(self):
        healthy = run_with(None)
        plan = FaultPlan(
            [
                NodeSlowdown(at=0.0, node_id=f"worker-{i:03d}", duration=1e6, factor=8.0)
                for i in range(4)
            ]
        )
        degraded = run_with(plan)
        assert degraded.metrics.avg_jct > healthy.metrics.avg_jct

    def test_cpu_factor_window(self):
        plan = FaultPlan([NodeSlowdown(at=5.0, node_id="worker-000", duration=10.0, factor=4.0)])
        result = run_with(plan)
        injector = result.fault_injector
        assert injector is not None
        assert injector.injected >= 1
        # After the run the window is over: factor back to 1.
        assert injector.cpu_factor("worker-000") == 1.0

    def test_overlapping_slowdowns_take_the_max(self):
        # Two overlapping windows on one node: factor during overlap is max.
        from repro.cluster.cluster import Cluster, ClusterConfig
        from repro.faults.injector import FaultInjector
        from repro.hdfs.filesystem import HDFS
        from repro.simulation.engine import Simulation

        sim = Simulation()
        cluster = Cluster(ClusterConfig(num_nodes=2))
        hdfs = HDFS(cluster)
        plan = FaultPlan(
            [
                NodeSlowdown(at=0.0, node_id="worker-000", duration=10.0, factor=2.0),
                NodeSlowdown(at=2.0, node_id="worker-000", duration=4.0, factor=5.0),
            ]
        )
        injector = FaultInjector(sim, cluster, hdfs, plan)
        sim.run(until=3.0)
        assert injector.cpu_factor("worker-000") == 5.0
        sim.run(until=7.0)
        assert injector.cpu_factor("worker-000") == 2.0
        sim.run(until=11.0)
        assert injector.cpu_factor("worker-000") == 1.0
        assert injector.cpu_factor("worker-001") == 1.0


class TestExecutorFailure:
    def test_tasks_requeued_and_jobs_still_finish(self):
        plan = FaultPlan(
            [ExecutorFailure(at=5.0, executor_id=f"executor-{i:03d}") for i in range(6)]
        )
        result = run_with(plan)
        assert result.metrics.unfinished_jobs == 0
        assert result.fault_injector.tasks_requeued >= 0  # may be idle at t=5

    def test_failed_executor_not_reallocated_until_restart(self):
        # Restart delay beyond the runner's event horizon (1e7 s): the
        # executor never comes back within the run.
        plan = FaultPlan(
            [ExecutorFailure(at=0.5, executor_id="executor-000", restart_delay=2e7)]
        )
        result = run_with(plan)
        assert "executor-000" in result.fault_injector.failed_executor_ids
        assert result.metrics.unfinished_jobs == 0

    def test_restart_restores_health(self):
        plan = FaultPlan(
            [ExecutorFailure(at=0.5, executor_id="executor-000", restart_delay=1.0)]
        )
        result = run_with(plan)
        assert "executor-000" not in result.fault_injector.failed_executor_ids


class TestDiskFailure:
    def test_replicas_lost_and_restored(self):
        plan = FaultPlan([DiskFailure(at=1.0, node_id="worker-000")])
        result = run_with(plan)
        injector = result.fault_injector
        assert injector.replicas_lost > 0
        assert injector.replicas_restored == injector.replicas_lost
        assert result.metrics.unfinished_jobs == 0

    def test_without_re_replication_replicas_stay_lost(self):
        plan = FaultPlan([DiskFailure(at=1.0, node_id="worker-000", re_replicate=False)])
        result = run_with(plan)
        assert result.fault_injector.replicas_restored == 0
        assert result.metrics.unfinished_jobs == 0

    def test_cached_copies_dropped(self):
        plan = FaultPlan([DiskFailure(at=30.0, node_id="worker-000")])
        result = run_with(plan, cache_per_node=2 * GB)
        assert result.metrics.unfinished_jobs == 0


class TestEagerValidation:
    """Plan targets are checked at construction, not at fire time."""

    def _build(self, plan):
        from repro.cluster.cluster import Cluster, ClusterConfig
        from repro.faults.injector import FaultInjector
        from repro.hdfs.filesystem import HDFS
        from repro.simulation.engine import Simulation

        sim = Simulation()
        cluster = Cluster(ClusterConfig(num_nodes=2))
        return FaultInjector(sim, cluster, HDFS(cluster), plan)

    def test_unknown_disk_node_rejected_at_construction(self):
        # Previously a bare KeyError deep inside _fail_disk at fire time.
        plan = FaultPlan([DiskFailure(at=1.0, node_id="worker-999")])
        with pytest.raises(ConfigurationError, match="worker-999"):
            self._build(plan)

    def test_unknown_slowdown_node_rejected(self):
        plan = FaultPlan(
            [NodeSlowdown(at=1.0, node_id="nope", duration=5.0, factor=2.0)]
        )
        with pytest.raises(ConfigurationError, match="nope"):
            self._build(plan)

    def test_unknown_executor_rejected(self):
        plan = FaultPlan([ExecutorFailure(at=1.0, executor_id="executor-999")])
        with pytest.raises(ConfigurationError, match="executor-999"):
            self._build(plan)

    def test_unknown_partition_member_rejected(self):
        from repro.faults.plan import NetworkPartition

        plan = FaultPlan(
            [NetworkPartition(at=1.0, duration=5.0, nodes=("worker-000", "ghost"))]
        )
        with pytest.raises(ConfigurationError, match="ghost"):
            self._build(plan)


class TestDeterminism:
    def test_same_plan_same_outcome(self):
        plan = FaultPlan(
            [
                NodeSlowdown(at=3.0, node_id="worker-001", duration=50.0, factor=5.0),
                ExecutorFailure(at=8.0, executor_id="executor-003"),
                DiskFailure(at=12.0, node_id="worker-002"),
            ]
        )
        r1 = run_with(plan)
        r2 = run_with(plan)
        assert r1.metrics == r2.metrics
