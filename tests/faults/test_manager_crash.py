"""ManagerCrash: the fault kind, its injection path, and the outage stall."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import ExecutorFailure, FaultPlan, ManagerCrash, NodeFailure

pytestmark = [pytest.mark.faults, pytest.mark.recovery]

BASE = dict(
    manager="custody", workload="sort", num_nodes=10, num_apps=2,
    jobs_per_app=3, seed=11,
)


def run_with(plan, **overrides):
    return run_experiment(
        ExperimentConfig(**{**BASE, **overrides}), fault_plan=plan
    )


class TestManagerCrashEvent:
    def test_valid(self):
        e = ManagerCrash(at=10.0, duration=20.0)
        assert e.duration == 20.0

    @pytest.mark.parametrize("duration", [0.0, -5.0])
    def test_invalid_duration(self, duration):
        with pytest.raises(ConfigurationError):
            ManagerCrash(at=10.0, duration=duration)

    def test_negative_at(self):
        with pytest.raises(ConfigurationError):
            ManagerCrash(at=-1.0, duration=5.0)


class TestInjection:
    def test_requires_recovery_coordinator(self):
        plan = FaultPlan([ManagerCrash(at=10.0, duration=20.0)])
        with pytest.raises(ConfigurationError, match="manager_recovery"):
            run_with(plan)

    def test_crash_recovers_and_jobs_finish(self):
        plan = FaultPlan([ManagerCrash(at=10.0, duration=20.0)])
        result = run_with(plan, manager_recovery=True, lease_duration=300.0,
                          timeline_enabled=True)
        assert result.metrics.unfinished_jobs == 0
        rec = result.recovery
        assert rec is not None
        assert rec.manager_crashes == 1 and rec.recoveries == 1
        injector = result.fault_injector
        assert injector is not None and injector.injected >= 1
        assert injector.mttr["manager"] == [20.0]
        kinds = [r.kind for r in result.timeline]
        assert "fault.manager" in kinds
        assert "manager.down" in kinds
        assert "manager.restart" in kinds
        assert "manager.recovered" in kinds

    def test_outage_stalls_allocation(self):
        plan = FaultPlan([ManagerCrash(at=5.0, duration=30.0)])
        result = run_with(plan, manager_recovery=True, lease_duration=300.0,
                          timeline_enabled=True)
        # During [5, 35 + window) no grants are handed out.
        down_end = 35.0 + result.config.reconciliation_window
        grant_times = [
            r.time for r in result.timeline if r.kind == "executor.grant"
        ]
        assert all(t < 5.0 or t >= down_end for t in grant_times)
        rec = result.recovery
        assert rec.rounds_stalled >= 1 or rec.grants_refused >= 0

    def test_double_crash_extends_outage(self):
        plan = FaultPlan([
            ManagerCrash(at=10.0, duration=20.0),
            ManagerCrash(at=20.0, duration=25.0),  # lands while still down
        ])
        result = run_with(plan, manager_recovery=True, lease_duration=300.0)
        rec = result.recovery
        assert rec.manager_crashes == 2
        # Only the surviving generation completes a recovery.
        assert rec.recoveries == 1
        assert result.metrics.unfinished_jobs == 0

    def test_recovery_work_preserving_with_long_lease(self):
        plan = FaultPlan([ManagerCrash(at=15.0, duration=20.0)])
        result = run_with(plan, manager_recovery=True, lease_duration=600.0)
        rec = result.recovery
        assert rec.leases_at_crash > 0
        assert rec.leases_readopted == rec.leases_at_crash
        assert rec.leases_expired == 0
        assert rec.zombies_reclaimed == 0
        assert rec.zombies_surviving == 0
        assert rec.tasks_requeued == 0

    def test_short_lease_expires_and_requeues(self):
        # Outage far beyond lease_duration: every lease expires on restart
        # and the reclaimed tasks are requeued without node penalties.
        plan = FaultPlan([ManagerCrash(at=8.0, duration=60.0)])
        result = run_with(plan, manager_recovery=True, lease_duration=5.0,
                          lease_renew_interval=1.0)
        rec = result.recovery
        assert rec.leases_at_crash > 0
        assert rec.leases_readopted == 0
        assert rec.leases_expired >= rec.leases_at_crash - rec.zombies_reclaimed
        assert result.metrics.unfinished_jobs == 0
        faults = result.faults
        # Control-plane reclaims never count as node failures.
        assert faults.blacklist_events == 0

    def test_wal_flush_lag_creates_reclaimed_zombies(self):
        # A large flush lag loses the WAL tail: grants made shortly before
        # the crash are unknown to the rebuilt ledger, so their executors
        # come back as zombies — detected and reclaimed, never surviving.
        plan = FaultPlan([ManagerCrash(at=6.0, duration=25.0)])
        result = run_with(plan, manager_recovery=True, lease_duration=600.0,
                          wal_flush_lag=30.0, checkpoint_interval=1000.0)
        rec = result.recovery
        assert rec.wal_lost_entries > 0
        assert rec.zombies_reclaimed > 0
        assert rec.zombies_surviving == 0
        assert result.metrics.unfinished_jobs == 0

    def test_submissions_buffered_during_outage(self):
        # Jobs arriving mid-outage buffer their manager notification and
        # retry; the run still drains everything.
        plan = FaultPlan([ManagerCrash(at=0.5, duration=40.0)])
        result = run_with(plan, manager_recovery=True, lease_duration=600.0,
                          jobs_per_app=4)
        assert result.faults.submissions_buffered > 0
        assert result.metrics.unfinished_jobs == 0

    def test_deterministic(self):
        plan = FaultPlan([ManagerCrash(at=12.0, duration=18.0)])
        r1 = run_with(plan, manager_recovery=True, lease_duration=300.0)
        r2 = run_with(plan, manager_recovery=True, lease_duration=300.0)
        assert r1.metrics == r2.metrics
        assert r1.recovery.as_dict() == r2.recovery.as_dict()


class TestChaosIntegration:
    def test_manager_crashes_drawn_last(self):
        # A plan with crashes extends the crash-free plan for the same
        # seed instead of reshuffling it (seed-stability of chaos plans).
        import numpy as np

        from repro.faults.chaos import build_chaos_plan

        def draw(crashes):
            rng = np.random.default_rng([3, 7919, 1])
            return build_chaos_plan(
                10, 2, rng, node_failures=1, partitions=1, degradations=1,
                executor_failures=1, slowdowns=1, link_flaps=1,
                correlated_failures=1, manager_crashes=crashes, horizon=100.0,
            )

        without = draw(0)
        with_crashes = draw(2)
        crashes = with_crashes.of_type(ManagerCrash)
        assert len(crashes) == 2
        others = [e for e in with_crashes if not isinstance(e, ManagerCrash)]
        assert others == without.events
        for crash in crashes:
            assert 0.0 <= crash.at <= 100.0
            assert 5.0 <= crash.duration <= 15.0  # 5-15% of the horizon


class TestExecutorRestartEpoch:
    def test_stale_restart_cannot_revive_a_refailed_executor(self):
        """Regression: an executor restart callback left over from a first
        failure must not heal a *second* failure early (the heal used to
        double-count when node churn revived the executor in between)."""
        from repro.cluster.cluster import Cluster, ClusterConfig
        from repro.faults.injector import FaultInjector
        from repro.hdfs.filesystem import HDFS
        from repro.simulation.engine import Simulation
        from repro.simulation.timeline import Timeline

        sim = Simulation()
        timeline = Timeline(lambda: sim.now)
        cluster = Cluster(ClusterConfig(num_nodes=2))
        hdfs = HDFS(cluster)
        plan = FaultPlan([
            ExecutorFailure(at=5.0, executor_id="executor-000",
                            restart_delay=10.0),   # restart due at t=15
            NodeFailure(at=8.0, node_id="worker-000", restart_delay=4.0,
                        re_replicate=False),       # revives it at t=12
            ExecutorFailure(at=13.0, executor_id="executor-000",
                            restart_delay=10.0),   # restart due at t=23
        ])
        injector = FaultInjector(sim, cluster, hdfs, plan, timeline=timeline)

        sim.run(until=16.0)
        # The t=15 callback belongs to the first failure: stale, ignored.
        assert "executor-000" in injector.failed_executor_ids
        assert not cluster.executor("executor-000").healthy

        sim.run(until=24.0)
        assert "executor-000" not in injector.failed_executor_ids
        assert cluster.executor("executor-000").healthy
        restarts = [
            r for r in timeline
            if r.kind == "fault.executor.restart" and r.subject == "executor-000"
        ]
        # Exactly one executor-level heal, at the second failure's restart
        # time — not an extra early one from the stale callback.
        assert [r.time for r in restarts] == [23.0]
