"""NodeFailure end to end: crash, stale views, modeled recovery traffic."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import FaultPlan, NodeFailure

pytestmark = pytest.mark.faults

BASE = dict(
    manager="custody", workload="sort", num_nodes=12, num_apps=2,
    jobs_per_app=3, seed=6, timeline_enabled=True, perf_counters=True,
)


def run_with(plan, **overrides):
    return run_experiment(
        ExperimentConfig(**{**BASE, **overrides}), fault_plan=plan
    )


class TestNodeFailure:
    def test_jobs_finish_and_blocks_recovered(self):
        plan = FaultPlan(
            [NodeFailure(at=5.0, node_id="worker-000", restart_delay=40.0)]
        )
        result = run_with(plan)
        faults = result.faults
        assert result.metrics.unfinished_jobs == 0
        assert faults.replicas_lost > 0
        # Recovery ran as real transfers through the fabric.
        assert faults.recovery_flows > 0
        assert faults.recovery_bytes > 0
        assert faults.replicas_restored > 0
        kinds = {r.kind for r in result.timeline}
        assert "fault.node" in kinds
        assert "fault.node.restore" in kinds
        assert "fault.re_replicate" in kinds
        assert faults.mttr["node"] == pytest.approx(40.0)

    def test_recovery_traffic_contends_in_perf_counters(self):
        plan = FaultPlan(
            [NodeFailure(at=5.0, node_id="worker-000", restart_delay=40.0)]
        )
        baseline = run_with(None)
        faulted = run_with(plan)
        # Recovery copies are extra flow events through the shared fabric.
        assert faulted.perf.flow_events > baseline.perf.flow_events
        assert (
            faulted.perf.flow_events
            >= baseline.perf.flow_events + faulted.faults.recovery_flows
        )

    def test_double_failure_of_same_node_is_idempotent(self):
        plan = FaultPlan(
            [
                NodeFailure(at=5.0, node_id="worker-000", restart_delay=60.0),
                NodeFailure(at=10.0, node_id="worker-000", restart_delay=60.0),
            ]
        )
        result = run_with(plan)
        assert result.metrics.unfinished_jobs == 0
        # The second event is a no-op; only one restore fires.
        restores = [
            r for r in result.timeline.of_kind("fault.node.restore")
        ]
        assert len(restores) == 1

    def test_executors_unhealthy_while_down_and_restored_after(self):
        plan = FaultPlan(
            [NodeFailure(at=1.0, node_id="worker-003", restart_delay=20.0)]
        )
        result = run_with(plan)
        injector = result.fault_injector
        assert not injector.node_down("worker-003")  # restored by run end
        for executor in result.manager.cluster.executors_on("worker-003"):
            assert executor.healthy


class TestStaleViews:
    def test_ground_truth_view_never_grants_dead_nodes(self):
        plan = FaultPlan(
            [NodeFailure(at=3.0, node_id="worker-001", restart_delay=30.0)]
        )
        result = run_with(plan)  # no detector: managers see ground truth
        assert result.faults.failed_launches == 0

    def test_detector_delay_allows_grants_on_dead_nodes(self):
        plan = FaultPlan(
            [NodeFailure(at=3.0, node_id="worker-001", restart_delay=30.0)]
        )
        result = run_with(plan, detector_timeout=12.0, heartbeat_interval=3.0)
        # The run completes either way; failed launches feed the detector.
        assert result.metrics.unfinished_jobs == 0
        assert result.faults.detector_reports == result.faults.failed_launches
