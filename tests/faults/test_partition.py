"""NetworkPartition and LinkDegradation: stalls, timeouts, re-rating."""

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkDegradation, NetworkPartition
from repro.hdfs.filesystem import HDFS
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline

pytestmark = pytest.mark.faults


def make_stack(num_nodes=4, engine="incremental", network_timeout=30.0, plan=None):
    sim = Simulation()
    timeline = Timeline(clock=lambda: sim.now)
    fabric = NetworkFabric(sim, timeline=timeline, engine=engine)
    cluster = Cluster(
        ClusterConfig(num_nodes=num_nodes, uplink=1.0, downlink=1.0),
        fabric=fabric,
    )
    hdfs = HDFS(cluster)
    injector = None
    if plan is not None:
        injector = FaultInjector(
            sim, cluster, hdfs, plan, timeline=timeline, fabric=fabric,
            network_timeout=network_timeout,
        )
    return sim, fabric, timeline, injector


@pytest.mark.parametrize("engine", ["incremental", "reference"])
class TestPartitionTransfers:
    def test_inflight_transfer_across_cut_fails(self, engine):
        plan = FaultPlan(
            [NetworkPartition(at=5.0, duration=10.0, nodes=("worker-000",))]
        )
        sim, fabric, timeline, _ = make_stack(engine=engine, plan=plan)
        transfer = fabric.start_transfer("worker-000", "worker-001", 100.0)
        sim.run()
        assert transfer.done.triggered  # resolved, with a failure
        fails = [r for r in timeline.of_kind("transfer.fail")]
        assert len(fails) == 1
        assert fails[0].get("cause") == "partition"
        assert fabric.failed_count == 1

    def test_new_transfer_stalls_then_resumes_on_heal(self, engine):
        plan = FaultPlan(
            [NetworkPartition(at=0.0, duration=10.0, nodes=("worker-000",))]
        )
        sim, fabric, timeline, _ = make_stack(
            engine=engine, plan=plan, network_timeout=30.0
        )
        sim.run(until=1.0)
        transfer = fabric.start_transfer("worker-000", "worker-001", 2.0)
        sim.run()
        kinds = [r.kind for r in timeline if r.subject == transfer.transfer_id]
        assert "transfer.stall" in kinds
        assert "transfer.unstall" in kinds
        assert "transfer.finish" in kinds
        # Stalled from t=1, released at heal (t=10), then 2 bytes at 1 B/s.
        assert transfer.finished_at == pytest.approx(12.0)

    def test_stalled_transfer_times_out_when_heal_is_late(self, engine):
        plan = FaultPlan(
            [NetworkPartition(at=0.0, duration=100.0, nodes=("worker-000",))]
        )
        sim, fabric, timeline, _ = make_stack(
            engine=engine, plan=plan, network_timeout=10.0
        )
        sim.run(until=1.0)
        fabric.start_transfer("worker-000", "worker-001", 2.0)
        sim.run()
        fails = [r for r in timeline.of_kind("transfer.fail")]
        assert len(fails) == 1
        assert fails[0].get("cause") == "connect-timeout"
        assert fabric.failed_count == 1

    def test_same_side_traffic_unaffected(self, engine):
        plan = FaultPlan(
            [NetworkPartition(at=0.0, duration=50.0, nodes=("worker-000", "worker-001"))]
        )
        sim, fabric, _, _ = make_stack(engine=engine, plan=plan)
        inside = fabric.start_transfer("worker-000", "worker-001", 2.0)
        outside = fabric.start_transfer("worker-002", "worker-003", 2.0)
        sim.run()
        assert inside.finished_at == pytest.approx(2.0)
        assert outside.finished_at == pytest.approx(2.0)


@pytest.mark.parametrize("engine", ["incremental", "reference"])
class TestLinkDegradation:
    def test_degraded_link_slows_transfer(self, engine):
        plan = FaultPlan(
            [LinkDegradation(at=0.0, node_id="worker-000", duration=100.0, factor=4.0)]
        )
        sim, fabric, _, _ = make_stack(engine=engine, plan=plan)
        transfer = fabric.start_transfer("worker-000", "worker-001", 8.0)
        sim.run()
        # 8 bytes at 1/4 B/s — four times the healthy duration.
        assert transfer.finished_at == pytest.approx(32.0)

    def test_inflight_transfer_rerated_mid_window(self, engine):
        plan = FaultPlan(
            [LinkDegradation(at=4.0, node_id="worker-000", duration=4.0, factor=2.0)]
        )
        sim, fabric, _, _ = make_stack(engine=engine, plan=plan)
        transfer = fabric.start_transfer("worker-000", "worker-001", 10.0)
        sim.run()
        # 4 s at 1 B/s, 4 s at 0.5 B/s, remaining 4 bytes at 1 B/s.
        assert transfer.finished_at == pytest.approx(12.0)


class TestFullStackPartition:
    def test_jobs_survive_partition(self):
        config = ExperimentConfig(
            manager="custody", workload="sort", num_nodes=12, num_apps=2,
            jobs_per_app=3, seed=6, timeline_enabled=True,
        )
        plan = FaultPlan(
            [
                NetworkPartition(
                    at=5.0, duration=20.0,
                    nodes=("worker-000", "worker-001", "worker-002"),
                )
            ]
        )
        result = run_experiment(config, fault_plan=plan)
        assert result.metrics.unfinished_jobs == 0
        kinds = {r.kind for r in result.timeline}
        assert "fault.partition" in kinds
        assert "fault.partition.heal" in kinds
        assert result.faults.mttr["partition"] == pytest.approx(20.0)

    def test_requeue_after_total_reclaim_reallocates(self):
        """Regression: backoff must not strand a task with zero executors.

        A retried task leaves ``outstanding_tasks`` during its backoff
        window, so the manager may reclaim every executor the driver owns.
        Found by hypothesis: a partition stalls the last shuffle fetch of a
        job past its siblings' completion; by the time the connect timeout
        fires and the task is requeued, the driver has no executors, no
        running attempts, and — without ``on_demand_changed`` — no event
        left that could ever grant it capacity again.
        """
        config = ExperimentConfig(
            manager="custody", workload="pagerank", num_nodes=10,
            num_apps=2, jobs_per_app=2, seed=47, timeline_enabled=True,
        )
        plan = FaultPlan(
            [
                NetworkPartition(
                    at=59.0, duration=31.0,
                    nodes=("worker-002", "worker-003"),
                )
            ]
        )
        result = run_experiment(config, fault_plan=plan)
        assert result.metrics.unfinished_jobs == 0
        finish = {r.subject for r in result.timeline.of_kind("task.finish")}
        for app in result.apps:
            for job in app.jobs:
                for task in job.all_tasks:
                    assert (task.task_id in finish) != task.cancelled

    def test_partition_requires_fabric(self):
        sim = Simulation()
        cluster = Cluster(ClusterConfig(num_nodes=2))
        hdfs = HDFS(cluster)
        plan = FaultPlan(
            [NetworkPartition(at=1.0, duration=5.0, nodes=("worker-000",))]
        )
        with pytest.raises(ConfigurationError):
            FaultInjector(sim, cluster, hdfs, plan)
