"""FaultPlan and fault event validation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.faults.plan import DiskFailure, ExecutorFailure, FaultPlan, NodeSlowdown

pytestmark = pytest.mark.faults


class TestEvents:
    def test_node_slowdown_valid(self):
        e = NodeSlowdown(at=5.0, node_id="n0", duration=10.0, factor=3.0)
        assert e.factor == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"at": -1.0},
            {"node_id": ""},
            {"duration": 0.0},
            {"factor": 0.5},
        ],
    )
    def test_node_slowdown_invalid(self, kwargs):
        base = dict(at=1.0, node_id="n0", duration=5.0, factor=2.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            NodeSlowdown(**base)

    def test_executor_failure_valid(self):
        e = ExecutorFailure(at=1.0, executor_id="e0", restart_delay=0.0)
        assert e.restart_delay == 0.0

    @pytest.mark.parametrize(
        "kwargs", [{"executor_id": ""}, {"restart_delay": -1.0}]
    )
    def test_executor_failure_invalid(self, kwargs):
        base = dict(at=1.0, executor_id="e0", restart_delay=1.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ExecutorFailure(**base)

    def test_disk_failure_requires_node(self):
        with pytest.raises(ConfigurationError):
            DiskFailure(at=1.0, node_id="")


class TestPlan:
    def test_sorted_by_time(self):
        plan = FaultPlan(
            [
                DiskFailure(at=9.0, node_id="n0"),
                NodeSlowdown(at=1.0, node_id="n1", duration=2.0),
            ]
        )
        assert [e.at for e in plan] == [1.0, 9.0]

    def test_add_keeps_order(self):
        plan = FaultPlan()
        plan.add(DiskFailure(at=5.0, node_id="n0")).add(
            DiskFailure(at=2.0, node_id="n1")
        )
        assert [e.at for e in plan] == [2.0, 5.0]
        assert len(plan) == 2

    def test_of_type(self):
        plan = FaultPlan(
            [
                DiskFailure(at=1.0, node_id="n0"),
                NodeSlowdown(at=2.0, node_id="n1", duration=1.0),
            ]
        )
        assert len(plan.of_type(DiskFailure)) == 1
        assert len(plan.of_type(ExecutorFailure)) == 0
