"""FaultPlan JSON round-trip, the gray event types, and the checked fixtures."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.faults.plan import (
    CorrelatedFailure,
    DiskFailure,
    ExecutorFailure,
    FaultPlan,
    LinkDegradation,
    LinkFlap,
    ManagerCrash,
    NetworkPartition,
    NodeFailure,
    NodeSlowdown,
)

pytestmark = [pytest.mark.faults, pytest.mark.robustness]

FIXTURE = Path(__file__).parent.parent / "fixtures" / "fault_plan_gray.json"
CRASH_FIXTURE = (
    Path(__file__).parent.parent / "fixtures" / "fault_plan_manager_crash.json"
)


class TestLinkFlap:
    def test_valid(self):
        e = LinkFlap(at=10.0, node_id="n0", duration=12.0, period=4.0,
                     down_fraction=0.5)
        assert e.down_fraction == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node_id": ""},
            {"duration": 0.0},
            {"period": 0.0},
            {"down_fraction": 0.0},
            {"down_fraction": 1.0},
        ],
    )
    def test_invalid(self, kwargs):
        base = dict(at=1.0, node_id="n0", duration=8.0, period=4.0,
                    down_fraction=0.5)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            LinkFlap(**base)

    def test_down_windows(self):
        e = LinkFlap(at=10.0, node_id="n0", duration=10.0, period=4.0,
                     down_fraction=0.5)
        # Cycles at 10, 14, 18; each down for 2s; the last clipped at 20.
        assert e.down_windows() == [(10.0, 12.0), (14.0, 16.0), (18.0, 20.0)]

    def test_down_windows_clip(self):
        e = LinkFlap(at=0.0, node_id="n0", duration=5.0, period=4.0,
                     down_fraction=0.75)
        # Second cycle starts at 4.0 but the flap ends at 5.0.
        assert e.down_windows() == [(0.0, 3.0), (4.0, 5.0)]

    def test_windows_lie_within_duration(self):
        e = LinkFlap(at=3.0, node_id="n0", duration=11.0, period=3.5,
                     down_fraction=0.4)
        for start, end in e.down_windows():
            assert 3.0 <= start < end <= 3.0 + 11.0


class TestCorrelatedFailure:
    def test_valid_sorts_and_dedups(self):
        e = CorrelatedFailure(at=1.0, node_ids=("b", "a", "b"))
        assert e.node_ids == ("a", "b")

    @pytest.mark.parametrize(
        "node_ids", [(), ("only",), ("dup", "dup"), ("a", "")]
    )
    def test_invalid_members(self, node_ids):
        with pytest.raises(ConfigurationError):
            CorrelatedFailure(at=1.0, node_ids=node_ids)

    def test_negative_restart(self):
        with pytest.raises(ConfigurationError):
            CorrelatedFailure(at=1.0, node_ids=("a", "b"), restart_delay=-1.0)


class TestJsonRoundTrip:
    def _plan(self) -> FaultPlan:
        plan = FaultPlan()
        plan.add(NodeFailure(at=5.0, node_id="w0", restart_delay=20.0))
        plan.add(LinkFlap(at=8.0, node_id="w1", duration=10.0, period=4.0,
                          down_fraction=0.5))
        plan.add(CorrelatedFailure(at=12.0, node_ids=("w2", "w3"),
                                   restart_delay=9.0))
        return plan

    def test_round_trip_identity(self):
        plan = self._plan()
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.events == plan.events

    def test_validate_returns_self(self):
        plan = self._plan()
        assert plan.validate() is plan

    def test_unsorted_json_normalised(self):
        # The constructor time-sorts, so hand-shuffled artifacts load into
        # the canonical order instead of erroring.
        text = self._plan().to_json()
        doc = json.loads(text)
        doc["events"].reverse()
        restored = FaultPlan.from_json(json.dumps(doc))
        assert [e.at for e in restored.events] == [5.0, 8.0, 12.0]

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("{not json")

    def test_unsupported_version_rejected(self):
        doc = json.loads(self._plan().to_json())
        doc["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            FaultPlan.from_json(json.dumps(doc))

    def test_unknown_kind_rejected(self):
        doc = json.loads(self._plan().to_json())
        doc["events"][0]["kind"] = "MeteorStrike"
        with pytest.raises(ConfigurationError, match="MeteorStrike"):
            FaultPlan.from_json(json.dumps(doc))

    def test_bad_field_rejected(self):
        doc = json.loads(self._plan().to_json())
        doc["events"][0]["warp_factor"] = 9
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json(json.dumps(doc))

    def test_invalid_event_value_rejected(self):
        doc = json.loads(self._plan().to_json())
        doc["events"][1]["down_fraction"] = 2.0
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json(json.dumps(doc))

    def test_missing_events_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json(json.dumps({"version": 1}))


class TestFixture:
    def test_fixture_loads_and_round_trips(self):
        text = FIXTURE.read_text()
        plan = FaultPlan.from_json(text)
        assert len(plan.events) == 8
        kinds = [type(e).__name__ for e in plan.events]
        # One of every event type, including the gray kinds.
        assert kinds == [
            "NodeFailure", "NetworkPartition", "LinkDegradation",
            "ExecutorFailure", "NodeSlowdown", "DiskFailure",
            "LinkFlap", "CorrelatedFailure",
        ]
        # Serialising again reproduces the fixture byte-for-byte (modulo
        # the trailing newline the file carries).
        assert plan.to_json() == text.rstrip("\n")

    def test_fixture_gray_payloads(self):
        plan = FaultPlan.from_json(FIXTURE.read_text())
        flap = next(e for e in plan.events if isinstance(e, LinkFlap))
        assert flap.down_windows()[0] == (18.0, 20.0)
        corr = next(e for e in plan.events if isinstance(e, CorrelatedFailure))
        assert corr.node_ids == ("worker-008", "worker-009", "worker-010")


class TestManagerCrashFixture:
    def test_fixture_loads_and_round_trips(self):
        text = CRASH_FIXTURE.read_text()
        plan = FaultPlan.from_json(text)
        kinds = [type(e).__name__ for e in plan.events]
        assert kinds == [
            "ManagerCrash", "ExecutorFailure", "NodeFailure",
            "NetworkPartition", "ManagerCrash",
        ]
        crashes = plan.of_type(ManagerCrash)
        assert [(c.at, c.duration) for c in crashes] == [
            (10.0, 15.0), (40.0, 8.0),
        ]
        assert plan.to_json() == text.rstrip("\n")


# ------------------------- Hypothesis round-trip over every fault kind
_WORKER = st.integers(0, 19).map(lambda i: f"worker-{i:03d}")
_AT = st.floats(min_value=0.0, max_value=300.0, allow_nan=False)
_DURATION = st.floats(min_value=0.1, max_value=120.0, allow_nan=False)
_DELAY = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)

_EVENTS = st.one_of(
    st.builds(
        NodeSlowdown, at=_AT, node_id=_WORKER, duration=_DURATION,
        factor=st.floats(min_value=1.0, max_value=16.0),
    ),
    st.builds(
        ExecutorFailure, at=_AT,
        executor_id=st.integers(0, 39).map(lambda i: f"executor-{i:03d}"),
        restart_delay=_DELAY,
    ),
    st.builds(
        DiskFailure, at=_AT, node_id=_WORKER, re_replicate=st.booleans()
    ),
    st.builds(
        NodeFailure, at=_AT, node_id=_WORKER, restart_delay=_DELAY,
        re_replicate=st.booleans(),
    ),
    st.builds(
        NetworkPartition, at=_AT, duration=_DURATION,
        nodes=st.sets(_WORKER, min_size=1, max_size=6).map(tuple),
    ),
    st.builds(
        LinkDegradation, at=_AT, node_id=_WORKER, duration=_DURATION,
        factor=st.floats(min_value=1.1, max_value=16.0),
    ),
    st.builds(
        LinkFlap, at=_AT, node_id=_WORKER, duration=_DURATION,
        period=st.floats(min_value=0.5, max_value=30.0),
        down_fraction=st.floats(min_value=0.01, max_value=0.99),
    ),
    st.builds(
        CorrelatedFailure, at=_AT,
        node_ids=st.sets(_WORKER, min_size=2, max_size=6).map(tuple),
        restart_delay=_DELAY, re_replicate=st.booleans(),
    ),
    st.builds(ManagerCrash, at=_AT, duration=_DURATION),
)


@given(events=st.lists(_EVENTS, max_size=12))
@settings(max_examples=80, deadline=None)
def test_any_plan_round_trips_through_json(events):
    """Every fault kind survives to_json → from_json identically."""
    plan = FaultPlan(events)
    restored = FaultPlan.from_json(plan.to_json())
    assert restored.events == plan.events


def test_slowdown_round_trip_preserves_defaults():
    plan = FaultPlan()
    plan.add(NodeSlowdown(at=3.0, node_id="w9", duration=5.0, factor=2.5))
    restored = FaultPlan.from_json(plan.to_json())
    event = restored.events[0]
    assert isinstance(event, NodeSlowdown)
    assert event.factor == 2.5
