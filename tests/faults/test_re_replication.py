"""Modeled re-replication: recovery copies as real transfers, edge cases."""

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.units import BlockSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NodeFailure
from repro.hdfs.filesystem import HDFS
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline

pytestmark = pytest.mark.faults


def make_stack(num_nodes, replication, plan, file_size=4.0):
    sim = Simulation()
    timeline = Timeline(clock=lambda: sim.now)
    fabric = NetworkFabric(sim, timeline=timeline)
    cluster = Cluster(
        ClusterConfig(num_nodes=num_nodes, uplink=1.0, downlink=1.0),
        fabric=fabric,
    )
    hdfs = HDFS(cluster, block_spec=BlockSpec(size=1.0, replication=replication))
    entry = hdfs.ingest("/data/f", file_size)
    injector = FaultInjector(
        sim, cluster, hdfs, plan, timeline=timeline, fabric=fabric
    )
    return sim, hdfs, timeline, injector, entry


class TestRecovery:
    def test_lost_replicas_restored_via_transfers(self):
        plan = FaultPlan(
            [NodeFailure(at=1.0, node_id="worker-000", restart_delay=200.0)]
        )
        sim, hdfs, timeline, injector, entry = make_stack(
            num_nodes=3, replication=2, plan=plan
        )
        sim.run()
        assert injector.replicas_lost > 0
        # Every lost block had one survivor and exactly one free target.
        assert injector.replicas_restored == injector.replicas_lost
        assert injector.recovery_flows == injector.replicas_lost
        assert injector.blocks_lost == 0
        for block in entry.blocks:
            assert len(hdfs.namenode.locations(block.block_id)) == 2

    def test_all_replicas_lost_counts_data_loss_without_crash(self):
        plan = FaultPlan(
            [NodeFailure(at=1.0, node_id="worker-000", restart_delay=200.0)]
        )
        sim, hdfs, timeline, injector, entry = make_stack(
            num_nodes=2, replication=1, plan=plan, file_size=6.0
        )
        sim.run()
        # Blocks that lived only on worker-000 are unrecoverable.
        assert injector.blocks_lost > 0
        assert injector.blocks_lost == injector.replicas_lost
        assert injector.replicas_restored == 0
        lost = {r.subject for r in timeline.of_kind("fault.block_lost")}
        assert len(lost) == injector.blocks_lost

    def test_no_healthy_target_gives_up_after_bounded_retries(self):
        # Two nodes, replication 2: the only survivor already holds every
        # block and the crashed node stays down past the retry budget.
        plan = FaultPlan(
            [NodeFailure(at=1.0, node_id="worker-000", restart_delay=500.0)]
        )
        sim, hdfs, timeline, injector, entry = make_stack(
            num_nodes=2, replication=2, plan=plan
        )
        sim.run()
        assert injector.replicas_lost > 0
        assert injector.replicas_restored == 0
        assert injector.recovery_flows == 0
        giveups = {r.subject for r in timeline.of_kind("fault.re_replicate.giveup")}
        assert len(giveups) == injector.replicas_lost

    def test_block_already_back_at_full_replication_is_skipped(self):
        sim, hdfs, timeline, injector, entry = make_stack(
            num_nodes=3, replication=2, plan=FaultPlan()
        )
        block_id = entry.blocks[0].block_id
        # Nothing was actually lost: the pump must notice and do nothing.
        injector._begin_re_replication("worker-000", [block_id])
        sim.run()
        assert injector.recovery_flows == 0
        assert injector.replicas_restored == 0
        assert len(hdfs.namenode.locations(block_id)) == 2

    def test_recovery_resumes_after_node_restore_frees_a_target(self):
        # Same two-node topology, but the node comes back inside the retry
        # budget (< 6 retries x 5 s): the copy then lands on it.
        plan = FaultPlan(
            [NodeFailure(at=1.0, node_id="worker-000", restart_delay=12.0)]
        )
        sim, hdfs, timeline, injector, entry = make_stack(
            num_nodes=2, replication=2, plan=plan
        )
        sim.run()
        assert injector.replicas_lost > 0
        assert injector.replicas_restored == injector.replicas_lost
        for block in entry.blocks:
            assert len(hdfs.namenode.locations(block.block_id)) == 2


class TestFullStackRecovery:
    def test_data_loss_tasks_accounted_not_wedged(self):
        # Replication 1 + a long node outage: tasks whose only input replica
        # died are abandoned as data loss, and the run still completes.
        config = ExperimentConfig(
            manager="custody", workload="sort", num_nodes=8, num_apps=2,
            jobs_per_app=3, seed=3, replication=1, timeline_enabled=True,
        )
        plan = FaultPlan(
            [NodeFailure(at=2.0, node_id="worker-000", restart_delay=5000.0)]
        )
        result = run_experiment(config, fault_plan=plan)
        assert result.metrics.unfinished_jobs == 0
        for app in result.apps:
            for job in app.jobs:
                for task in job.all_tasks:
                    assert task.finished_at is not None or task.cancelled
        if result.faults.data_loss_tasks:
            abandons = [r for r in result.timeline.of_kind("task.abandon")]
            assert any(r.get("reason") == "data-loss" for r in abandons)
