"""Regenerate the golden determinism fixtures.

Run from the repo root after any *intentional* behaviour change::

    PYTHONPATH=src python tests/fixtures/regen_golden.py

Every fixture is recorded under the **reference** (seed) rate allocator;
``tests/integration/test_golden_traces.py`` then asserts that both the
reference and the incremental engine reproduce these traces record for
record.  Review the diff of the regenerated JSON like code: an unexpected
change here is a silent behaviour regression.
"""

from __future__ import annotations

import json
from pathlib import Path

FIXTURES = Path(__file__).resolve().parent


def fig1_payload() -> dict:
    from repro.experiments.scenarios import fig1_motivating_example

    result = fig1_motivating_example()
    return {
        "scenario": "fig1_motivating_example",
        "data_unaware": result.data_unaware,
        "data_aware": result.data_aware,
    }


def fig45_payload() -> dict:
    from repro.experiments.scenarios import fig45_intraapp_trace

    return {
        "scenario": "fig45_intraapp_trace",
        "arms": fig45_intraapp_trace(network_engine="reference"),
    }


def runner_payload() -> dict:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig(
        manager="custody",
        workload="wordcount",
        num_nodes=8,
        num_apps=2,
        jobs_per_app=2,
        seed=11,
        timeline_enabled=True,
        network_engine="reference",
    )
    result = run_experiment(config)
    assert result.timeline is not None
    return {
        "scenario": "run_experiment",
        "config": {
            "manager": config.manager,
            "workload": config.workload,
            "num_nodes": config.num_nodes,
            "num_apps": config.num_apps,
            "jobs_per_app": config.jobs_per_app,
            "seed": config.seed,
        },
        "records": [r.as_dict() for r in result.timeline],
    }


def alloc_plans_payload() -> dict:
    from repro.experiments.allocbench import golden_plan_stream

    return {
        "scenario": "alloc_plan_stream",
        "size": {"apps": 3, "jobs_per_app": 4, "tasks_per_job": 6,
                 "replication": 2},
        "rounds": 40,
        "seed": 5,
        "plans": golden_plan_stream((3, 4, 6, 2), rounds=40, seed=5,
                                    engine="reference"),
    }


def trace_replay_payload() -> dict:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment
    from repro.workload.replay import read_cluster_trace

    trace = read_cluster_trace(
        FIXTURES / "replay_sample.csv",
        ("app-00", "app-01"),
        time_scale=1e-7,  # "microsecond" fixture timestamps -> ~2 min horizon
    )
    per_manager = {}
    for manager in ("custody", "standalone", "yarn", "mesos"):
        config = ExperimentConfig(
            manager=manager,
            workload="wordcount",
            num_nodes=8,
            num_apps=2,
            jobs_per_app=8,
            seed=13,
            network_engine="reference",
            alloc_engine="reference",
        )
        result = run_experiment(config, trace=trace)
        per_manager[manager] = result.metrics.as_dict()
    return {
        "scenario": "trace_replay",
        "trace": {"csv": "replay_sample.csv", "time_scale": 1e-7,
                  "jobs": len(trace)},
        "config": {"workload": "wordcount", "num_nodes": 8, "num_apps": 2,
                   "jobs_per_app": 8, "seed": 13},
        "metrics": per_manager,
    }


GOLDEN = {
    "golden_fig1.json": fig1_payload,
    "golden_fig45_trace.json": fig45_payload,
    "golden_runner_trace.json": runner_payload,
    "golden_alloc_plans.json": alloc_plans_payload,
    "golden_trace_replay.json": trace_replay_payload,
}


def main() -> None:
    for name, build in GOLDEN.items():
        path = FIXTURES / name
        path.write_text(json.dumps(build(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
