"""Block value semantics."""

import pytest

from repro.hdfs.blocks import Block


def test_fields():
    b = Block("b-0", path="/data/f", index=0, size=128.0)
    assert b.block_id == "b-0"
    assert str(b) == "b-0"


def test_hashable_and_value_equal():
    a = Block("b-0", path="/f", index=0, size=1.0)
    b = Block("b-0", path="/f", index=0, size=1.0)
    assert a == b
    assert len({a, b}) == 1


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        Block("b", path="/f", index=-1, size=1.0)


def test_nonpositive_size_rejected():
    with pytest.raises(ValueError):
        Block("b", path="/f", index=0, size=0.0)


def test_immutability():
    b = Block("b-0", path="/f", index=0, size=1.0)
    with pytest.raises(AttributeError):
        b.size = 2.0
