"""BlockCache LRU semantics and HDFS cache integration."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import BlockSpec, MB
from repro.hdfs.blocks import Block
from repro.hdfs.cache import BlockCache
from repro.hdfs.filesystem import HDFS


def block(i, size=10.0):
    return Block(f"b-{i}", path="/f", index=i, size=size)


class TestBlockCache:
    def test_insert_and_hold(self):
        cache = BlockCache("n0", capacity=100.0)
        assert cache.insert(block(0)) == []
        assert cache.holds("b-0")
        assert cache.used == 10.0

    def test_lru_eviction_order(self):
        cache = BlockCache("n0", capacity=25.0)
        cache.insert(block(0))
        cache.insert(block(1))
        cache.touch("b-0")  # refresh b-0; b-1 becomes LRU
        evicted = cache.insert(block(2))
        assert [b.block_id for b in evicted] == ["b-1"]
        assert cache.holds("b-0") and cache.holds("b-2")

    def test_oversized_block_refused(self):
        cache = BlockCache("n0", capacity=5.0)
        assert cache.insert(block(0, size=10.0)) == []
        assert not cache.holds("b-0")

    def test_zero_capacity_disables(self):
        cache = BlockCache("n0", capacity=0.0)
        cache.insert(block(0))
        assert cache.block_count == 0

    def test_reinsert_refreshes_without_eviction(self):
        cache = BlockCache("n0", capacity=20.0)
        cache.insert(block(0))
        cache.insert(block(1))
        assert cache.insert(block(0)) == []  # refresh: b-1 becomes the LRU
        evicted = cache.insert(block(2))
        assert [b.block_id for b in evicted] == ["b-1"]

    def test_hit_miss_counters(self):
        cache = BlockCache("n0", capacity=100.0)
        cache.insert(block(0))
        assert cache.touch("b-0")
        assert not cache.touch("b-9")
        assert cache.hits == 1 and cache.misses == 1

    def test_read_time(self):
        cache = BlockCache("n0", capacity=100.0, bandwidth=50.0)
        assert cache.read_time(100.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            cache.read_time(-1.0)

    def test_explicit_evict_and_clear(self):
        cache = BlockCache("n0", capacity=100.0)
        cache.insert(block(0))
        cache.insert(block(1))
        assert cache.evict("b-0").block_id == "b-0"
        assert cache.evict("ghost") is None
        assert [b.block_id for b in cache.clear()] == ["b-1"]
        assert cache.used == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BlockCache("n0", capacity=-1.0)
        with pytest.raises(ConfigurationError):
            BlockCache("n0", capacity=1.0, bandwidth=0.0)


class TestHdfsCaching:
    @pytest.fixture
    def hdfs(self, small_cluster):
        return HDFS(
            small_cluster,
            block_spec=BlockSpec(size=10 * MB, replication=1),
            rng=np.random.default_rng(5),
            cache_per_node=25 * MB,
        )

    def test_caching_enabled_flag(self, small_cluster, hdfs):
        assert hdfs.caching_enabled
        plain = HDFS(small_cluster.__class__(small_cluster.config))
        assert not plain.caching_enabled

    def test_cache_block_registers_with_namenode(self, hdfs):
        entry = hdfs.ingest("/f", 10 * MB)
        blk = entry.blocks[0]
        holder = hdfs.namenode.locations(blk.block_id)[0]
        other = next(n for n in hdfs.cluster.node_ids if n != holder)
        assert hdfs.cache_block(other, blk)
        assert other in hdfs.namenode.cached_locations(blk.block_id)
        assert other in hdfs.namenode.serving_locations(blk.block_id)
        # Disk locations are unchanged.
        assert other not in hdfs.namenode.locations(blk.block_id)

    def test_can_serve_locally_includes_cache(self, hdfs):
        entry = hdfs.ingest("/f", 10 * MB)
        blk = entry.blocks[0]
        holder = hdfs.namenode.locations(blk.block_id)[0]
        other = next(n for n in hdfs.cluster.node_ids if n != holder)
        assert not hdfs.can_serve_locally(blk.block_id, other)
        hdfs.cache_block(other, blk)
        assert hdfs.can_serve_locally(blk.block_id, other)

    def test_eviction_deregisters(self, hdfs):
        entry = hdfs.ingest("/f", 60 * MB)  # 6 blocks of 10 MB; cache fits 2
        node = hdfs.cluster.node_ids[0]
        for blk in entry.blocks[:3]:
            hdfs.cache_block(node, blk)
        cached_now = [
            b.block_id for b in entry.blocks if hdfs.caches[node].holds(b.block_id)
        ]
        assert len(cached_now) == 2  # capacity 25 MB -> two 10 MB blocks
        evicted = entry.blocks[0].block_id
        assert node not in hdfs.namenode.cached_locations(evicted)

    def test_local_read_time_prefers_cache(self, hdfs):
        entry = hdfs.ingest("/f", 10 * MB)
        blk = entry.blocks[0]
        holder = hdfs.namenode.locations(blk.block_id)[0]
        disk_time = hdfs.local_read_time(blk, holder)
        hdfs.cache_block(holder, blk)
        cached_time = hdfs.local_read_time(blk, holder)
        assert cached_time < disk_time

    def test_cache_stats(self, hdfs):
        entry = hdfs.ingest("/f", 10 * MB)
        blk = entry.blocks[0]
        node = hdfs.cluster.node_ids[0]
        hdfs.cache_block(node, blk)
        hdfs.local_read_time(blk, node)  # hit
        stats = hdfs.cache_stats()
        assert stats["hits"] >= 1
        assert stats["cached_blocks"] >= 1
        assert 0.0 <= stats["hit_rate"] <= 1.0


class TestNameNodeCachedReplicas:
    def test_unknown_block_rejected(self, small_hdfs):
        with pytest.raises(ConfigurationError):
            small_hdfs.namenode.add_cached_replica("ghost", "n0")
        with pytest.raises(ConfigurationError):
            small_hdfs.namenode.cached_locations("ghost")

    def test_remove_cached_replica(self, small_hdfs):
        entry = small_hdfs.ingest("/f", 10 * 2**20)
        bid = entry.blocks[0].block_id
        small_hdfs.namenode.add_cached_replica(bid, "nX")
        small_hdfs.namenode.remove_cached_replica(bid, "nX")
        assert small_hdfs.namenode.cached_locations(bid) == []

    def test_delete_clears_cached_map(self, small_hdfs):
        entry = small_hdfs.ingest("/f", 10 * 2**20)
        bid = entry.blocks[0].block_id
        small_hdfs.namenode.add_cached_replica(bid, "nX")
        small_hdfs.delete("/f")
        with pytest.raises(ConfigurationError):
            small_hdfs.namenode.cached_locations(bid)

    def test_stats_count_cached(self, small_hdfs):
        entry = small_hdfs.ingest("/f", 10 * 2**20)
        small_hdfs.namenode.add_cached_replica(entry.blocks[0].block_id, "nX")
        assert small_hdfs.namenode.stats()["cached_replicas"] == 1.0
