"""DataNode inventory and capacity accounting."""

import pytest

from repro.common.errors import CapacityError
from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode


def block(i, size=10.0):
    return Block(f"b-{i}", path="/f", index=i, size=size)


@pytest.fixture
def dn():
    return DataNode("w-0", capacity=100.0)


def test_store_and_holds(dn):
    dn.store(block(0))
    assert dn.holds("b-0")
    assert not dn.holds("b-1")
    assert dn.block_count == 1


def test_usage_accounting(dn):
    dn.store(block(0, 30.0))
    dn.store(block(1, 20.0))
    assert dn.used == pytest.approx(50.0)
    assert dn.free == pytest.approx(50.0)


def test_store_idempotent(dn):
    dn.store(block(0))
    dn.store(block(0))
    assert dn.used == pytest.approx(10.0)
    assert dn.block_count == 1


def test_capacity_enforced(dn):
    dn.store(block(0, 90.0))
    with pytest.raises(CapacityError):
        dn.store(block(1, 20.0))


def test_evict(dn):
    dn.store(block(0, 40.0))
    dn.evict("b-0")
    assert not dn.holds("b-0")
    assert dn.used == 0.0


def test_evict_missing_is_noop(dn):
    dn.evict("ghost")
    assert dn.used == 0.0


def test_block_report_in_insertion_order(dn):
    dn.store(block(2))
    dn.store(block(0))
    assert dn.block_report() == ["b-2", "b-0"]


def test_zero_capacity_rejected():
    with pytest.raises(CapacityError):
        DataNode("w", capacity=0.0)
