"""HDFS facade: ingest, locate, delete, utilization."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB
from repro.common.units import BlockSpec
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import PopularityAwarePlacement


class TestIngest:
    def test_splits_into_blocks(self, small_hdfs):
        entry = small_hdfs.ingest("/data/f", 35 * MB)  # 10 MB blocks
        assert entry.block_count == 4
        assert entry.blocks[-1].size == pytest.approx(5 * MB)
        assert sum(b.size for b in entry.blocks) == pytest.approx(35 * MB)

    def test_replicas_match_spec(self, small_hdfs):
        entry = small_hdfs.ingest("/data/f", 30 * MB)
        for block in entry.blocks:
            assert small_hdfs.namenode.replication_of(block.block_id) == 2

    def test_replicas_actually_stored_on_datanodes(self, small_hdfs):
        entry = small_hdfs.ingest("/data/f", 10 * MB)
        block = entry.blocks[0]
        for node_id in small_hdfs.namenode.locations(block.block_id):
            assert small_hdfs.datanodes[node_id].holds(block.block_id)

    def test_zero_size_rejected(self, small_hdfs):
        with pytest.raises(ConfigurationError):
            small_hdfs.ingest("/data/f", 0)

    def test_duplicate_path_rejected(self, small_hdfs):
        small_hdfs.ingest("/data/f", MB)
        with pytest.raises(ConfigurationError):
            small_hdfs.ingest("/data/f", MB)

    def test_popularity_drives_replication(self, small_cluster):
        hdfs = HDFS(
            small_cluster,
            block_spec=BlockSpec(size=10 * MB, replication=2),
            placement=PopularityAwarePlacement(max_replicas=6),
            rng=np.random.default_rng(0),
        )
        hot = hdfs.ingest("/hot", 10 * MB, popularity=3.0)
        cold = hdfs.ingest("/cold", 10 * MB, popularity=0.5)
        hot_reps = hdfs.namenode.replication_of(hot.blocks[0].block_id)
        cold_reps = hdfs.namenode.replication_of(cold.blocks[0].block_id)
        assert hot_reps > cold_reps


class TestQueries:
    def test_block_locations(self, small_hdfs):
        entry = small_hdfs.ingest("/data/f", 20 * MB)
        locations = small_hdfs.block_locations("/data/f")
        assert set(locations) == set(entry.blocks)
        for nodes in locations.values():
            assert len(nodes) == 2

    def test_is_local(self, small_hdfs):
        entry = small_hdfs.ingest("/data/f", 10 * MB)
        block = entry.blocks[0]
        holders = small_hdfs.namenode.locations(block.block_id)
        non_holder = next(
            n for n in small_hdfs.cluster.node_ids if n not in holders
        )
        assert small_hdfs.is_local(block.block_id, holders[0])
        assert not small_hdfs.is_local(block.block_id, non_holder)

    def test_storage_utilization(self, small_hdfs):
        small_hdfs.ingest("/data/f", 40 * MB)
        util = small_hdfs.storage_utilization()
        assert len(util) == 8
        assert sum(util.values()) > 0


class TestDelete:
    def test_delete_clears_everything(self, small_hdfs):
        entry = small_hdfs.ingest("/data/f", 20 * MB)
        block_ids = [b.block_id for b in entry.blocks]
        small_hdfs.delete("/data/f")
        assert not small_hdfs.namenode.exists("/data/f")
        for dn in small_hdfs.datanodes.values():
            for bid in block_ids:
                assert not dn.holds(bid)


class TestBlockReports:
    def test_rebalance_heals_namenode_drift(self, small_hdfs):
        entry = small_hdfs.ingest("/data/f", 10 * MB)
        block = entry.blocks[0]
        holder = small_hdfs.namenode.locations(block.block_id)[0]
        # Simulate silent data loss on the holder.
        small_hdfs.datanodes[holder].evict(block.block_id)
        assert holder in small_hdfs.namenode.locations(block.block_id)  # stale
        small_hdfs.rebalance_reports()
        assert holder not in small_hdfs.namenode.locations(block.block_id)


def test_deterministic_placement_with_same_rng(small_cluster):
    def build():
        hdfs = HDFS(
            small_cluster.__class__(small_cluster.config),
            block_spec=BlockSpec(size=10 * MB, replication=2),
            rng=np.random.default_rng(55),
        )
        entry = hdfs.ingest("/data/f", 50 * MB)
        return [
            tuple(hdfs.namenode.locations(b.block_id)) for b in entry.blocks
        ]

    assert build() == build()
