"""NameNode: directory tree, file metadata, replica map, source picking."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hdfs.blocks import Block
from repro.hdfs.namenode import FileEntry, NameNode


def entry(path="/data/f", n_blocks=2):
    blocks = [Block(f"{path}#b{i}", path=path, index=i, size=10.0) for i in range(n_blocks)]
    return FileEntry(path=path, size=10.0 * n_blocks, blocks=blocks)


@pytest.fixture
def nn():
    return NameNode()


class TestDirectories:
    def test_mkdirs_creates_ancestors(self, nn):
        nn.mkdirs("/a/b/c")
        assert nn.is_dir("/a")
        assert nn.is_dir("/a/b")
        assert nn.is_dir("/a/b/c")

    def test_mkdirs_idempotent(self, nn):
        nn.mkdirs("/a/b")
        nn.mkdirs("/a/b")
        assert nn.is_dir("/a/b")

    def test_root_exists(self, nn):
        assert nn.is_dir("/")

    def test_relative_path_rejected(self, nn):
        with pytest.raises(ConfigurationError):
            nn.mkdirs("relative/path")

    def test_listdir(self, nn):
        nn.register_file(entry("/data/x"))
        nn.register_file(entry("/data/y"))
        nn.mkdirs("/data/sub")
        assert nn.listdir("/data") == ["sub", "x", "y"]
        assert nn.listdir("/") == ["data"]

    def test_listdir_on_file_rejected(self, nn):
        nn.register_file(entry("/data/x"))
        with pytest.raises(ConfigurationError):
            nn.listdir("/data/x")

    def test_mkdir_over_file_rejected(self, nn):
        nn.register_file(entry("/data/x"))
        with pytest.raises(ConfigurationError):
            nn.mkdirs("/data/x/sub")


class TestFiles:
    def test_register_and_lookup(self, nn):
        nn.register_file(entry("/data/f", 3))
        f = nn.file("/data/f")
        assert f.block_count == 3
        assert nn.exists("/data/f")

    def test_register_creates_parent_dirs(self, nn):
        nn.register_file(entry("/deep/nested/f"))
        assert nn.is_dir("/deep/nested")

    def test_duplicate_path_rejected(self, nn):
        nn.register_file(entry("/data/f"))
        with pytest.raises(ConfigurationError):
            nn.register_file(entry("/data/f"))

    def test_duplicate_block_id_rejected(self, nn):
        e1 = entry("/data/f1")
        nn.register_file(e1)
        clash = FileEntry(path="/data/f2", size=10.0, blocks=[e1.blocks[0]])
        with pytest.raises(ConfigurationError):
            nn.register_file(clash)

    def test_missing_file_rejected(self, nn):
        with pytest.raises(ConfigurationError):
            nn.file("/nope")

    def test_delete_removes_metadata(self, nn):
        e = entry("/data/f")
        nn.register_file(e)
        nn.delete("/data/f")
        assert not nn.exists("/data/f")
        with pytest.raises(ConfigurationError):
            nn.locations(e.blocks[0].block_id)

    def test_path_normalisation(self, nn):
        nn.register_file(entry("/data//f"))
        assert nn.exists("/data/f")


class TestReplicas:
    def test_add_and_locate(self, nn):
        e = entry("/data/f", 1)
        nn.register_file(e)
        bid = e.blocks[0].block_id
        nn.add_replica(bid, "w-2")
        nn.add_replica(bid, "w-0")
        assert nn.locations(bid) == ["w-0", "w-2"]
        assert nn.replication_of(bid) == 2

    def test_locate_file_pairs_blocks_and_nodes(self, nn):
        e = entry("/data/f", 2)
        nn.register_file(e)
        nn.add_replica(e.blocks[0].block_id, "w-0")
        nn.add_replica(e.blocks[1].block_id, "w-1")
        located = nn.locate_file("/data/f")
        assert located[0] == (e.blocks[0], ["w-0"])
        assert located[1] == (e.blocks[1], ["w-1"])

    def test_remove_replica(self, nn):
        e = entry("/data/f", 1)
        nn.register_file(e)
        bid = e.blocks[0].block_id
        nn.add_replica(bid, "w-0")
        nn.remove_replica(bid, "w-0")
        assert nn.locations(bid) == []

    def test_add_replica_unknown_block_rejected(self, nn):
        with pytest.raises(ConfigurationError):
            nn.add_replica("ghost", "w-0")

    def test_block_report_reconciles(self, nn):
        e = entry("/data/f", 2)
        nn.register_file(e)
        b0, b1 = (b.block_id for b in e.blocks)
        nn.add_replica(b0, "w-0")
        nn.add_replica(b1, "w-0")
        nn.apply_block_report("w-0", [b0])  # b1 lost on w-0
        assert nn.locations(b0) == ["w-0"]
        assert nn.locations(b1) == []

    def test_stats(self, nn):
        e = entry("/data/f", 2)
        nn.register_file(e)
        nn.add_replica(e.blocks[0].block_id, "w-0")
        stats = nn.stats()
        assert stats["files"] == 1.0
        assert stats["blocks"] == 2.0
        assert stats["replicas"] == 1.0
        assert stats["mean_replication"] == 0.5


class TestPickSource:
    def test_prefers_non_reader_holder(self, nn):
        e = entry("/data/f", 1)
        nn.register_file(e)
        bid = e.blocks[0].block_id
        nn.add_replica(bid, "w-0")
        nn.add_replica(bid, "w-1")
        assert nn.pick_source(bid, reader_node="w-0") == "w-1"

    def test_preferred_holder_wins(self, nn):
        e = entry("/data/f", 1)
        nn.register_file(e)
        bid = e.blocks[0].block_id
        nn.add_replica(bid, "w-0")
        nn.add_replica(bid, "w-5")
        assert nn.pick_source(bid, reader_node="w-9", preferred="w-5") == "w-5"

    def test_no_replica_rejected(self, nn):
        e = entry("/data/f", 1)
        nn.register_file(e)
        with pytest.raises(ConfigurationError):
            nn.pick_source(e.blocks[0].block_id, reader_node="w-0")

    def test_deterministic_choice(self, nn):
        e = entry("/data/f", 1)
        nn.register_file(e)
        bid = e.blocks[0].block_id
        for node in ("w-3", "w-1", "w-2"):
            nn.add_replica(bid, node)
        assert nn.pick_source(bid, "w-9") == "w-1"
