"""Placement policies: replica counts and node choices."""

import numpy as np
import pytest

from repro.cluster.topology import Topology
from repro.common.errors import ConfigurationError
from repro.hdfs.blocks import Block
from repro.hdfs.placement import (
    PopularityAwarePlacement,
    RackAwarePlacement,
    RandomPlacement,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


@pytest.fixture
def topo():
    t = Topology()
    for i in range(9):
        t.add_node(f"n{i}", f"rack-{i // 3}")
    return t


def a_block():
    return Block("b-0", path="/f", index=0, size=1.0)


NODES = [f"n{i}" for i in range(9)]


class TestRandomPlacement:
    def test_distinct_nodes(self, rng):
        chosen = RandomPlacement().choose_nodes(a_block(), 3, NODES, None, rng)
        assert len(chosen) == len(set(chosen)) == 3

    def test_count_clamped_to_universe(self, rng):
        chosen = RandomPlacement().choose_nodes(a_block(), 99, NODES, None, rng)
        assert sorted(chosen) == sorted(NODES)

    def test_no_nodes_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            RandomPlacement().choose_nodes(a_block(), 1, [], None, rng)

    def test_default_replica_count(self):
        assert RandomPlacement().replicas_for(3, popularity=5.0) == 3

    def test_roughly_uniform(self, rng):
        counts = {n: 0 for n in NODES}
        policy = RandomPlacement()
        for _ in range(2000):
            for node in policy.choose_nodes(a_block(), 3, NODES, None, rng):
                counts[node] += 1
        values = np.array(list(counts.values()), dtype=float)
        # Each node expects 2000*3/9 ≈ 667 hits; allow generous tolerance.
        assert values.min() > 500
        assert values.max() < 850


class TestRackAwarePlacement:
    def test_second_replica_off_rack(self, rng, topo):
        policy = RackAwarePlacement()
        for _ in range(50):
            first, second, *_ = policy.choose_nodes(a_block(), 3, NODES, topo, rng)
            assert topo.rack_of(first) != topo.rack_of(second)

    def test_third_replica_shares_second_rack(self, rng, topo):
        policy = RackAwarePlacement()
        for _ in range(50):
            chosen = policy.choose_nodes(a_block(), 3, NODES, topo, rng)
            assert len(set(chosen)) == 3
            assert topo.rack_of(chosen[1]) == topo.rack_of(chosen[2])

    def test_requires_topology(self, rng):
        with pytest.raises(ConfigurationError):
            RackAwarePlacement().choose_nodes(a_block(), 3, NODES, None, rng)

    def test_single_rack_degrades_gracefully(self, rng):
        topo = Topology()
        for n in ("a", "b", "c"):
            topo.add_node(n, "only-rack")
        chosen = RackAwarePlacement().choose_nodes(
            a_block(), 3, ["a", "b", "c"], topo, rng
        )
        assert sorted(chosen) == ["a", "b", "c"]

    def test_extra_replicas_fall_back(self, rng, topo):
        chosen = RackAwarePlacement().choose_nodes(a_block(), 5, NODES, topo, rng)
        assert len(set(chosen)) == 5


class TestPopularityAwarePlacement:
    def test_hot_files_get_more_replicas(self):
        policy = PopularityAwarePlacement(max_replicas=10)
        cold = policy.replicas_for(3, popularity=0.5)
        hot = policy.replicas_for(3, popularity=3.0)
        assert hot > cold
        assert hot == 9

    def test_bounds_respected(self):
        policy = PopularityAwarePlacement(min_replicas=2, max_replicas=4)
        assert policy.replicas_for(3, popularity=0.0) == 2
        assert policy.replicas_for(3, popularity=100.0) == 4

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            PopularityAwarePlacement(min_replicas=0)
        with pytest.raises(ConfigurationError):
            PopularityAwarePlacement(min_replicas=5, max_replicas=2)

    def test_placement_inherits_random(self, rng):
        chosen = PopularityAwarePlacement().choose_nodes(a_block(), 3, NODES, None, rng)
        assert len(set(chosen)) == 3
