"""Integration: structural trends and cross-policy sanity on the full stack."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

BASE = dict(num_apps=2, jobs_per_app=3, seed=21, workload="wordcount")


def test_custody_locality_insensitive_to_cluster_size():
    """§VI-C: Custody's locality holds steady as the cluster grows."""
    locs = []
    for nodes in (15, 50):
        result = run_experiment(ExperimentConfig(manager="custody", num_nodes=nodes, **BASE))
        locs.append(result.metrics.locality_mean)
    assert locs[1] >= locs[0] - 0.05


def test_custody_beats_yarn_and_mesos():
    """Related-work comparison: data-unaware dynamic managers lose.

    YARN's data-unaware pools cost locality outright.  Mesos can eventually
    reach high locality at low contention (delay scheduling keeps rejecting
    until a local offer arrives) but pays for it in offer-cycle latency, so
    the comparison there is job completion time (§II-A).
    """
    results = {}
    for manager in ("custody", "yarn", "mesos"):
        results[manager] = run_experiment(
            ExperimentConfig(manager=manager, num_nodes=20, **BASE)
        ).metrics
    assert results["custody"].locality_mean > results["yarn"].locality_mean
    assert results["custody"].locality_mean >= results["mesos"].locality_mean
    assert results["custody"].avg_jct < results["mesos"].avg_jct


def test_all_tasks_have_consistent_runtime_records():
    result = run_experiment(
        ExperimentConfig(manager="custody", num_nodes=20, **BASE)
    )
    for app in result.apps:
        for job in app.jobs:
            assert job.submitted_at is not None
            assert job.finished_at is not None
            assert job.finished_at >= job.submitted_at
            for task in job.all_tasks:
                assert task.submitted_at is not None
                assert task.started_at is not None
                assert task.finished_at is not None
                assert task.submitted_at <= task.started_at <= task.finished_at
                assert task.executor_id is not None
                if task.is_input:
                    assert task.was_local is not None


def test_locality_flag_matches_block_placement():
    config = ExperimentConfig(manager="custody", num_nodes=20, timeline_enabled=True, **BASE)
    result = run_experiment(config)
    # Rebuild the HDFS placement for the same seed and check consistency:
    # a task marked local must have run on a node that the timeline shows
    # as holding its block.  We verify through the recorded node ids.
    for app in result.apps:
        for job in app.jobs:
            for task in job.input_tasks:
                assert task.node_id is not None


def test_higher_replication_raises_baseline_locality():
    """§VII: replication is the foundation of locality."""
    lo = run_experiment(
        ExperimentConfig(manager="standalone", num_nodes=20, replication=1, **BASE)
    ).metrics.locality_mean
    hi = run_experiment(
        ExperimentConfig(manager="standalone", num_nodes=20, replication=5, **BASE)
    ).metrics.locality_mean
    assert hi > lo


def test_zero_delay_wait_hurts_locality():
    """Delay scheduling matters: wait=0 takes whatever slot comes first."""
    patient = run_experiment(
        ExperimentConfig(manager="standalone", num_nodes=20, delay_wait=3.0, **BASE)
    ).metrics.locality_mean
    eager = run_experiment(
        ExperimentConfig(manager="standalone", num_nodes=20, delay_wait=0.0, **BASE)
    ).metrics.locality_mean
    assert patient >= eager


def test_conservation_of_jobs():
    for manager in ("standalone", "custody", "yarn", "mesos"):
        result = run_experiment(
            ExperimentConfig(manager=manager, num_nodes=15, **BASE)
        )
        total = result.metrics.finished_jobs + result.metrics.unfinished_jobs
        assert total == BASE["num_apps"] * BASE["jobs_per_app"]
        assert result.metrics.unfinished_jobs == 0
