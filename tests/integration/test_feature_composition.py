"""All optional features enabled at once: they must compose cleanly."""

import pytest

from repro.common.units import GB
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import DiskFailure, ExecutorFailure, FaultPlan, NodeSlowdown


def kitchen_sink_config(manager="custody", seed=19):
    """Every extension switched on simultaneously."""
    return ExperimentConfig(
        manager=manager,
        workload="sort",
        num_nodes=20,
        num_apps=3,
        app_weights=(2.0, 1.0, 1.0),
        jobs_per_app=4,
        seed=seed,
        cache_per_node=2 * GB,
        speculation=True,
        kmn_fraction=0.9,
        rack_wait=1.0,
        nodes_per_rack=5,
        shuffle_fanout=2,
        custody_enforce_hints=True,
        placement="rack-aware",
        validate_plans=True,
        timeline_enabled=True,
    )


def hostile_plan():
    return FaultPlan(
        [
            NodeSlowdown(at=0.0, node_id="worker-003", duration=1e6, factor=6.0),
            ExecutorFailure(at=10.0, executor_id="executor-007", restart_delay=5.0),
            DiskFailure(at=15.0, node_id="worker-011"),
        ]
    )


@pytest.fixture(scope="module")
def result():
    return run_experiment(kitchen_sink_config(), fault_plan=hostile_plan())


def test_every_job_finishes(result):
    assert result.metrics.unfinished_jobs == 0
    assert result.metrics.finished_jobs == 12


def test_task_conservation(result):
    finish_ids = [r.subject for r in result.timeline.of_kind("task.finish")]
    assert len(finish_ids) == len(set(finish_ids))
    executed = sum(
        1 for a in result.apps for j in a.jobs for t in j.all_tasks if t.finished
    )
    assert len(finish_ids) == executed


def test_kmn_quorums_respected(result):
    for app in result.apps:
        for job in app.jobs:
            finished = sum(1 for t in job.input_tasks if t.finished)
            assert finished == job.input_quorum


def test_locality_levels_partition(result):
    levels = result.metrics.locality_levels
    assert levels
    assert sum(levels.values()) == pytest.approx(1.0)


def test_fault_counters_consistent(result):
    injector = result.fault_injector
    assert injector.injected == 3
    assert injector.replicas_lost == injector.replicas_restored
    assert "executor-007" not in injector.failed_executor_ids  # restarted


def test_determinism_with_everything_on():
    r1 = run_experiment(kitchen_sink_config(), fault_plan=hostile_plan())
    r2 = run_experiment(kitchen_sink_config(), fault_plan=hostile_plan())
    assert r1.metrics == r2.metrics
    assert r1.timeline.fingerprint() == r2.timeline.fingerprint()


def test_locality_aids_lift_both_managers_to_near_perfect():
    """With caching + KMN choice + rack-aware placement active, *both*
    managers sit near-perfect on this small cluster — the §VII observation
    that storage-side techniques complement (and at small scale can stand
    in for) allocation-side data awareness."""
    custody = run_experiment(kitchen_sink_config("custody"), fault_plan=hostile_plan())
    spark = run_experiment(kitchen_sink_config("standalone"), fault_plan=hostile_plan())
    assert custody.metrics.locality_mean >= 0.90
    assert spark.metrics.locality_mean >= 0.90
    assert custody.metrics.unfinished_jobs == spark.metrics.unfinished_jobs == 0
