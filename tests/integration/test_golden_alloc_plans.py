"""Golden allocation plans: both control planes == the pre-recorded stream.

``golden_alloc_plans.json`` pins the plan-signature sequence of a scripted
Custody churn scenario recorded under the *reference* engine.  Both engines
must reproduce it signature for signature — the cross-session determinism
anchor for the allocation control plane, complementing the in-process
equivalence tests (which would not catch both engines drifting together).

Regenerate after intentional changes: ``PYTHONPATH=src python
tests/fixtures/regen_golden.py`` (and review the fixture diff).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.allocbench import golden_plan_stream

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

ENGINES = ("reference", "incremental")


@pytest.mark.parametrize("engine", ENGINES)
def test_alloc_plan_stream_matches_golden(engine):
    fixture = json.loads((FIXTURES / "golden_alloc_plans.json").read_text())
    size = fixture["size"]
    stream = golden_plan_stream(
        (size["apps"], size["jobs_per_app"], size["tasks_per_job"],
         size["replication"]),
        rounds=fixture["rounds"],
        seed=fixture["seed"],
        engine=engine,
    )
    assert stream == fixture["plans"]
