"""Golden-trace determinism: optimized simulator == pre-recorded seed traces.

The fixtures under ``tests/fixtures/`` were recorded with the *reference*
(full-recompute) rate allocator — the seed behaviour.  These tests assert
that both allocators reproduce every fixture record for record: same seed,
same event timeline, byte-identical JSON projection.  That pins down

* the incremental engine's equivalence on real scheduler workloads (not
  just synthetic flow sets), and
* accidental behaviour drift anywhere in the stack — a schedule reorder,
  a float contract change, a timeline field rename all fail loudly here.

Regenerate after intentional changes: ``PYTHONPATH=src python
tests/fixtures/regen_golden.py`` (and review the fixture diff).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import fig1_motivating_example, fig45_intraapp_trace

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

ENGINES = ("reference", "incremental")


def load_fixture(name: str) -> dict:
    return json.loads((FIXTURES / name).read_text())


def roundtrip(payload) -> dict:
    """Normalise through JSON so tuples/lists and float repr compare equal."""
    return json.loads(json.dumps(payload, sort_keys=True))


def test_fig1_matches_golden():
    golden = load_fixture("golden_fig1.json")
    result = fig1_motivating_example()
    assert roundtrip(result.data_unaware) == golden["data_unaware"]
    assert roundtrip(result.data_aware) == golden["data_aware"]


@pytest.mark.parametrize("engine", ENGINES)
def test_fig45_trace_matches_golden(engine):
    golden = load_fixture("golden_fig45_trace.json")["arms"]
    arms = roundtrip(fig45_intraapp_trace(network_engine=engine))
    assert set(arms) == set(golden)
    for name in golden:
        assert arms[name]["jcts"] == golden[name]["jcts"], name
        assert arms[name]["records"] == golden[name]["records"], (
            f"{name} arm: timeline diverged from the seed-engine recording"
        )


@pytest.mark.slow
@pytest.mark.parametrize("engine", ENGINES)
def test_runner_trace_matches_golden(engine):
    golden = load_fixture("golden_runner_trace.json")
    config = ExperimentConfig(
        timeline_enabled=True,
        network_engine=engine,
        **golden["config"],
    )
    result = run_experiment(config)
    assert result.timeline is not None
    records = roundtrip([r.as_dict() for r in result.timeline])
    assert len(records) == len(golden["records"])
    for i, (got, want) in enumerate(zip(records, golden["records"])):
        assert got == want, f"record {i} diverged: {got} != {want}"
