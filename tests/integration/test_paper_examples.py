"""Integration: the paper's qualitative claims hold on the full stack."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.figures import run_policy_comparison

SETTINGS = dict(num_nodes=25, num_apps=4, jobs_per_app=4, seed=11)


@pytest.fixture(scope="module")
def comparison():
    """One shared standalone-vs-custody run per workload (module-scoped:
    these are the expensive full-stack simulations)."""
    out = {}
    for workload in ("pagerank", "wordcount", "sort"):
        base = ExperimentConfig(workload=workload, manager="custody", **SETTINGS)
        out[workload] = run_policy_comparison(base)
    return out


@pytest.mark.parametrize("workload", ["pagerank", "wordcount", "sort"])
def test_custody_improves_locality(comparison, workload):
    """The abstract's first claim, per workload."""
    spark = comparison[workload]["standalone"].metrics
    custody = comparison[workload]["custody"].metrics
    assert custody.locality_mean > spark.locality_mean


@pytest.mark.parametrize("workload", ["wordcount", "sort"])
def test_custody_reduces_jct(comparison, workload):
    """The abstract's second claim, for the single-shuffle workloads."""
    spark = comparison[workload]["standalone"].metrics
    custody = comparison[workload]["custody"].metrics
    assert custody.avg_jct < spark.avg_jct


def test_pagerank_jct_not_regressed(comparison):
    """PageRank is shuffle-iteration dominated, so its JCT gain is the
    smallest in the paper (§VI-B); we require no material regression."""
    spark = comparison["pagerank"]["standalone"].metrics
    custody = comparison["pagerank"]["custody"].metrics
    assert custody.avg_jct < spark.avg_jct * 1.02


@pytest.mark.parametrize("workload", ["pagerank", "wordcount", "sort"])
def test_custody_shortens_input_stages(comparison, workload):
    """Fig. 9: input (map) stages are faster under Custody."""
    spark = comparison[workload]["standalone"].metrics
    custody = comparison[workload]["custody"].metrics
    assert custody.avg_input_stage_time < spark.avg_input_stage_time


@pytest.mark.parametrize("workload", ["pagerank", "wordcount", "sort"])
def test_custody_lowers_scheduler_delay(comparison, workload):
    """Fig. 10: tasks find suitable executors sooner under Custody."""
    spark = comparison[workload]["standalone"].metrics
    custody = comparison[workload]["custody"].metrics
    assert custody.avg_scheduler_delay <= spark.avg_scheduler_delay


def test_pagerank_jct_gain_smallest(comparison):
    """§VI-B: iterative PageRank benefits least from faster input stages."""

    def reduction(workload):
        spark = comparison[workload]["standalone"].metrics.avg_jct
        custody = comparison[workload]["custody"].metrics.avg_jct
        return (spark - custody) / spark

    assert reduction("pagerank") < max(reduction("wordcount"), reduction("sort"))


def test_custody_fairness_not_worse(comparison):
    """Max-min objective: the worst app's local-job share must not regress."""
    for workload in comparison:
        spark = comparison[workload]["standalone"].metrics
        custody = comparison[workload]["custody"].metrics
        assert (
            custody.min_local_job_fraction >= spark.min_local_job_fraction - 0.05
        )


def test_every_job_finishes_under_all_policies(comparison):
    for workload, results in comparison.items():
        for policy, result in results.items():
            assert result.metrics.unfinished_jobs == 0, (workload, policy)
