"""Equivalence: the recovery stack is invisible until a crash fires.

The crash-recovery layer is deliberately event-free when healthy: lease
renewals are computed analytically at crash time, checkpoints piggyback
on WAL appends, and the coordinator only touches the manager's control
flow while it is down.  Enabling ``manager_recovery`` without a fault
plan must therefore leave the simulation *bitwise* on the seed
trajectory — same timeline records, same metrics, no RNG stream
consumed — under both network engines and both allocation engines.
That lockstep guarantee is what lets chaos runs turn the stack on by
default without invalidating golden traces elsewhere.
"""

from dataclasses import replace
from itertools import product

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

pytestmark = pytest.mark.recovery

BASE = ExperimentConfig(
    manager="custody",
    workload="sort",
    num_nodes=10,
    num_apps=2,
    jobs_per_app=3,
    seed=11,
    timeline_enabled=True,
)

RECOVERY = replace(
    BASE,
    manager_recovery=True,
    lease_duration=120.0,
    lease_renew_interval=5.0,
    checkpoint_interval=15.0,
    reconciliation_window=2.0,
)

ENGINES = list(product(["reference", "incremental"], ["reference", "incremental"]))


@pytest.mark.parametrize("network_engine,alloc_engine", ENGINES)
def test_crash_free_run_is_locked_to_seed_trajectory(network_engine, alloc_engine):
    plain = run_experiment(
        replace(BASE, network_engine=network_engine, alloc_engine=alloc_engine)
    )
    recovered = run_experiment(
        replace(RECOVERY, network_engine=network_engine, alloc_engine=alloc_engine)
    )

    assert plain.timeline is not None and recovered.timeline is not None
    plain_records = [r.as_dict() for r in plain.timeline]
    recovery_records = [r.as_dict() for r in recovered.timeline]
    assert len(plain_records) == len(recovery_records)
    for i, (a, b) in enumerate(zip(plain_records, recovery_records)):
        assert a == b, f"record {i} diverged with recovery enabled: {a} != {b}"

    assert recovered.metrics.avg_jct == plain.metrics.avg_jct
    assert recovered.metrics.unfinished_jobs == plain.metrics.unfinished_jobs == 0


def test_recovery_counters_stay_zero_without_crash():
    result = run_experiment(RECOVERY)
    rec = result.recovery
    assert rec is not None
    assert rec.manager_crashes == 0
    assert rec.recoveries == 0
    assert rec.leases_at_crash == 0
    assert rec.leases_readopted == 0
    assert rec.leases_expired == 0
    assert rec.zombies_reclaimed == 0
    assert rec.zombies_surviving == 0
    assert rec.tasks_requeued == 0
    assert rec.rounds_stalled == 0
    # The WAL still records the healthy run's grant/release history.
    assert rec.log.entries_total > 0


def test_wal_flush_lag_is_invisible_without_crash():
    # A lossy WAL changes what *would* survive a crash, never the run.
    plain = run_experiment(BASE)
    lossy = run_experiment(replace(RECOVERY, wal_flush_lag=10.0))
    assert lossy.metrics == plain.metrics
