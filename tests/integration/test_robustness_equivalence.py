"""Equivalence: the robustness layer is invisible on a fault-free run.

Every robustness mechanism is reactive — budgets spend only on retries,
breakers move only on failures, hedges need a suspected node, jitter
applies only to backoff delays, admission defers only under overload.
On a healthy cluster none of those triggers fire, so enabling the whole
stack must leave the simulation *bitwise* on the seed trajectory: same
timeline records, same metrics, no RNG stream consumed.  This is the
lockstep guarantee that lets the layer default-on safely in chaos runs
without invalidating golden traces elsewhere.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

pytestmark = pytest.mark.robustness

BASE = ExperimentConfig(
    manager="custody",
    workload="sort",
    num_nodes=10,
    num_apps=2,
    jobs_per_app=3,
    seed=11,
    timeline_enabled=True,
)

ROBUST = replace(
    BASE,
    detector_mode="adaptive",
    circuit_breaker=True,
    hedging=True,
    retry_jitter=True,
    retry_budget=16,
    retry_refill=0.5,
    admission_control=True,
)


@pytest.mark.parametrize("engine", ["reference", "incremental"])
def test_fault_free_run_is_locked_to_seed_trajectory(engine):
    plain = run_experiment(replace(BASE, network_engine=engine))
    robust = run_experiment(replace(ROBUST, network_engine=engine))

    assert plain.timeline is not None and robust.timeline is not None
    plain_records = [r.as_dict() for r in plain.timeline]
    robust_records = [r.as_dict() for r in robust.timeline]
    assert len(plain_records) == len(robust_records)
    for i, (a, b) in enumerate(zip(plain_records, robust_records)):
        assert a == b, f"record {i} diverged with robustness enabled: {a} != {b}"

    assert robust.metrics.avg_jct == plain.metrics.avg_jct
    assert robust.metrics.unfinished_jobs == plain.metrics.unfinished_jobs == 0


def test_robust_metrics_stay_zero_without_faults():
    result = run_experiment(ROBUST)
    faults = result.faults
    if faults is None:
        return  # no injector without a plan: nothing to count
    assert faults.retries_denied == 0
    assert faults.hedges_launched == 0
    assert faults.breaker_opens == 0
    assert faults.admission_deferred == 0
    assert faults.load_shed == 0
