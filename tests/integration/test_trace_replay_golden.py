"""Golden trace-replay determinism: external CSV → identical metrics.

``golden_trace_replay.json`` records the metrics of one small cluster-trace
replay (``replay_sample.csv``) under **all four managers**, captured with
the reference engines.  These tests assert that

* the CSV adapter is a pure function — the same fixture file always yields
  the same :class:`SubmissionTrace`, and
* every manager reproduces its recorded metrics bit-for-bit under both the
  reference and the incremental engines.

Regenerate after intentional changes: ``PYTHONPATH=src python
tests/fixtures/regen_golden.py`` (and review the fixture diff).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.replay import read_cluster_trace

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

ENGINES = ("reference", "incremental")
MANAGERS = ("custody", "standalone", "yarn", "mesos")


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads((FIXTURES / "golden_trace_replay.json").read_text())


@pytest.fixture(scope="module")
def trace(golden):
    return read_cluster_trace(
        FIXTURES / golden["trace"]["csv"],
        ("app-00", "app-01"),
        time_scale=golden["trace"]["time_scale"],
    )


def test_adapter_is_deterministic(golden, trace):
    again = read_cluster_trace(
        FIXTURES / golden["trace"]["csv"],
        ("app-00", "app-01"),
        time_scale=golden["trace"]["time_scale"],
    )
    assert len(trace) == golden["trace"]["jobs"]
    assert trace.to_records() == again.to_records()


@pytest.mark.slow
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("manager", MANAGERS)
def test_replay_metrics_match_golden(golden, trace, manager, engine):
    config = ExperimentConfig(
        manager=manager,
        workload=golden["config"]["workload"],
        num_nodes=golden["config"]["num_nodes"],
        num_apps=golden["config"]["num_apps"],
        jobs_per_app=golden["config"]["jobs_per_app"],
        seed=golden["config"]["seed"],
        network_engine=engine,
        alloc_engine=engine,
    )
    result = run_experiment(config, trace=trace)
    got = json.loads(json.dumps(result.metrics.as_dict(), sort_keys=True))
    assert got == golden["metrics"][manager], (
        f"{manager}/{engine}: replay metrics diverged from the recording"
    )
