"""Manager test harness: a controlled mini-cluster with pluggable managers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.units import BlockSpec
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import PlacementPolicy
from repro.network.fabric import NetworkFabric
from repro.scheduling.driver import ApplicationDriver
from repro.scheduling.policies import DelayScheduler
from repro.simulation.engine import Simulation
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


class OneBlockPerNode(PlacementPolicy):
    """Block k lives only on worker k mod N."""

    def choose_nodes(self, block, count, node_ids, topology, rng):
        return [node_ids[block.index % len(node_ids)]]


class ManagerHarness:
    """8 workers x 1 executor x 1 slot, blocks pinned one-per-node."""

    def __init__(self, num_nodes=8, slots=1, delay_wait=0.4):
        self.sim = Simulation()
        self.fabric = NetworkFabric(self.sim)
        self.cluster = Cluster(
            ClusterConfig(
                num_nodes=num_nodes,
                cores_per_node=max(2, slots),
                executors_per_node=1,
                executor_slots=slots,
                disk_bandwidth=1e12,
                uplink=1.0,
                downlink=1.0,
                nodes_per_rack=num_nodes,
            ),
            fabric=self.fabric,
        )
        self.hdfs = HDFS(
            self.cluster,
            block_spec=BlockSpec(size=1.0, replication=1),
            placement=OneBlockPerNode(),
            rng=np.random.default_rng(0),
        )
        self.entry = self.hdfs.ingest("/data/f", float(num_nodes))
        self.delay_wait = delay_wait
        self.drivers = {}
        self._job_seq = 0

    def add_app(self, manager, app_id):
        app = Application(app_id)
        driver = ApplicationDriver(
            self.sim, app, self.cluster, self.hdfs, self.fabric,
            DelayScheduler(wait=self.delay_wait),
        )
        self.drivers[app_id] = driver
        manager.register_driver(driver)
        return driver

    def make_job(self, app_id, block_indices, cpu=0.5):
        self._job_seq += 1
        job_id = f"j{self._job_seq:03d}"
        tasks = [
            Task(
                f"{job_id}/t{i}", job_id=job_id, app_id=app_id, stage_index=0,
                kind=TaskKind.INPUT, cpu_time=cpu, block=self.entry.blocks[b],
            )
            for i, b in enumerate(block_indices)
        ]
        return Job(job_id, app_id, [Stage(0, tasks)])


@pytest.fixture
def harness():
    return ManagerHarness()
