"""AdmissionController: overload deferral, shed accounting, recovery drain."""

import pytest

from repro.common.errors import ConfigurationError
from repro.managers.admission import AdmissionController
from repro.managers.base import ClusterManager


class RoundCountingManager(ClusterManager):
    """Synchronous manager whose allocation rounds just count themselves."""

    name = "counting"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rounds = 0

    def on_job_submitted(self, driver, job):
        if not self.admit_job(driver, job):
            return  # overloaded: round deferred until capacity recovers
        self._schedule_round()

    def _allocation_round(self):
        self.rounds += 1


class FakeInjector:
    def __init__(self, down=(), unreachable=()):
        self.down = set(down)
        self.unreachable = set(unreachable)

    def node_down(self, node_id):
        return node_id in self.down

    def node_reachable(self, node_id):
        return node_id not in self.unreachable


class FakeDetector:
    def __init__(self, dead=(), suspected=()):
        self.dead = set(dead)
        self.suspected = set(suspected)

    def is_alive(self, node_id):
        return node_id not in self.dead

    def is_suspected(self, node_id):
        return node_id in self.suspected


def attach(harness, *, factor, retry_interval=5.0, num_apps=2):
    manager = RoundCountingManager(harness.sim, harness.cluster, num_apps=num_apps)
    controller = AdmissionController(
        harness.sim, factor=factor, retry_interval=retry_interval
    )
    manager.attach_admission(controller)
    return manager, controller


pytestmark = pytest.mark.robustness


class TestValidation:
    def test_factor_must_be_positive(self, harness):
        with pytest.raises(ConfigurationError):
            AdmissionController(harness.sim, factor=0.0)

    def test_retry_interval_must_be_positive(self, harness):
        with pytest.raises(ConfigurationError):
            AdmissionController(harness.sim, retry_interval=0.0)


class TestGate:
    def test_unattached_manager_admits_everything(self, harness):
        manager = RoundCountingManager(harness.sim, harness.cluster, num_apps=2)
        driver = harness.add_app(manager, "a-0")
        assert manager.admission is None
        driver.submit_job(harness.make_job("a-0", range(8)))
        assert manager.rounds == 1

    def test_under_threshold_admits_inline(self, harness):
        # 8 deliverable slots x factor 1.0: a 4-task job is within budget.
        manager, controller = attach(harness, factor=1.0)
        driver = harness.add_app(manager, "a-0")
        driver.submit_job(harness.make_job("a-0", range(4)))
        assert manager.rounds == 1
        assert controller.admission_deferred == 0
        assert controller.deferred_jobs == 0

    def test_overload_defers_the_round(self, harness):
        # 8 slots x factor 0.5 = budget 4; an 8-task job overruns it.
        manager, controller = attach(harness, factor=0.5)
        driver = harness.add_app(manager, "a-0")
        driver.submit_job(harness.make_job("a-0", range(8)))
        assert manager.rounds == 0  # no allocation thrash
        assert controller.admission_deferred == 1
        assert controller.deferred_jobs == 1
        # The job's tasks still count as demand — queued, not dropped.
        over, pending, capacity = controller.overloaded()
        assert (over, pending, capacity) == (True, 8, 8)

    def test_recovery_drains_into_one_round(self, harness):
        manager, controller = attach(harness, factor=0.5)
        d0 = harness.add_app(manager, "a-0")
        d1 = harness.add_app(manager, "a-1")
        d0.submit_job(harness.make_job("a-0", range(8)))
        d1.submit_job(harness.make_job("a-1", range(8)))
        assert controller.deferred_jobs == 2
        # Capacity recovery between checks (the controller re-measures
        # demand vs capacity at every retry tick).
        controller.factor = 10.0
        harness.sim.run(until=6.0)
        assert controller.deferred_jobs == 0
        assert controller.admitted_after_defer == 2
        assert controller.load_shed == 0
        assert manager.rounds == 1  # one coalesced round for the batch

    def test_sustained_overload_counts_shed(self, harness):
        manager, controller = attach(harness, factor=0.5, retry_interval=5.0)
        driver = harness.add_app(manager, "a-0")
        driver.submit_job(harness.make_job("a-0", range(8)))
        harness.sim.run(until=11.0)  # retry ticks at t=5 and t=10
        assert controller.load_shed == 2
        assert controller.deferred_jobs == 1  # still queued, never dropped
        controller.factor = 10.0
        harness.sim.run(until=16.0)
        assert controller.deferred_jobs == 0
        assert controller.admitted_after_defer == 1

    def test_retry_timer_quiesces_after_drain(self, harness):
        # The timer is armed only while deferrals are outstanding: once the
        # batch drains the simulation runs dry (no perpetual ticking).
        manager, controller = attach(harness, factor=0.5)
        driver = harness.add_app(manager, "a-0")
        driver.submit_job(harness.make_job("a-0", range(8)))
        controller.factor = 10.0
        harness.sim.run(until=100.0)
        assert harness.sim.pending_events == 0  # no perpetual re-arm
        assert controller.load_shed == 0


class TestDeliverableCapacity:
    def test_ground_truth_without_injector(self, harness):
        manager, controller = attach(harness, factor=1.0)
        harness.add_app(manager, "a-0")
        assert controller.demand_and_capacity() == (0, 8)

    def test_detector_excludes_dead_and_suspected(self, harness):
        manager, controller = attach(harness, factor=1.0)
        harness.add_app(manager, "a-0")
        manager.fault_injector = FakeInjector()
        manager.detector = FakeDetector(
            dead={"worker-000"}, suspected={"worker-001"}
        )
        assert controller.demand_and_capacity() == (0, 6)

    def test_injector_only_excludes_unreachable(self, harness):
        manager, controller = attach(harness, factor=1.0)
        harness.add_app(manager, "a-0")
        manager.fault_injector = FakeInjector(
            unreachable={"worker-000", "worker-001", "worker-002"}
        )
        assert controller.demand_and_capacity() == (0, 5)
