"""ClusterManager base plumbing: registration, grant/revoke, quota."""

import pytest

from repro.common.errors import AllocationError, ConfigurationError
from repro.managers.base import ClusterManager


class NoopManager(ClusterManager):
    name = "noop"


def test_quota_is_equal_share(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=4)
    assert manager.quota == 2  # 8 executors / 4 apps


def test_quota_at_least_one(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=100)
    assert manager.quota == 1


def test_invalid_num_apps(harness):
    with pytest.raises(ConfigurationError):
        NoopManager(harness.sim, harness.cluster, num_apps=0)


def test_register_links_driver(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=2)
    driver = harness.add_app(manager, "a-0")
    assert driver.manager is manager
    assert manager.drivers["a-0"] is driver


def test_double_registration_rejected(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=2)
    driver = harness.add_app(manager, "a-0")
    with pytest.raises(AllocationError):
        manager.register_driver(driver)


def test_grant_allocates_and_attaches(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=2)
    driver = harness.add_app(manager, "a-0")
    executor = harness.cluster.executors[0]
    manager.grant(driver, executor)
    assert executor.owner == "a-0"
    assert driver.executor_count == 1


def test_revoke_idle(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=2)
    driver = harness.add_app(manager, "a-0")
    executor = harness.cluster.executors[0]
    manager.grant(driver, executor)
    assert manager.revoke_idle(driver, executor)
    assert executor.is_free
    assert driver.executor_count == 0


def test_revoke_busy_returns_false(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=2)
    driver = harness.add_app(manager, "a-0")
    executor = harness.cluster.executors[0]
    manager.grant(driver, executor)
    executor.start_task("t-0")
    assert not manager.revoke_idle(driver, executor)
    assert executor.owner == "a-0"


def test_revoke_foreign_executor_rejected(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=2)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    executor = harness.cluster.executors[0]
    manager.grant(d0, executor)
    with pytest.raises(AllocationError):
        manager.revoke_idle(d1, executor)


def test_needed_executors_rounds_up(harness):
    manager = NoopManager(harness.sim, harness.cluster, num_apps=2)
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [0, 1, 2])
    driver.submit_job(job)  # 3 tasks, 1 slot per executor
    assert manager.needed_executors(driver) == 3
