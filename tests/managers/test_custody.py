"""CustodyManager: postponed, data-aware, demand-driven allocation."""

import pytest

from repro.managers.custody import CustodyManager


def make_manager(harness, num_apps=2, **kw):
    return CustodyManager(
        harness.sim, harness.cluster, num_apps=num_apps, validate=True, **kw
    )


def test_nothing_allocated_at_registration(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    assert driver.executor_count == 0


def test_job_submission_triggers_data_aware_grant(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [2, 5])  # blocks pinned to workers 2 and 5
    driver.submit_job(job)
    nodes = {e.node_id for e in driver.executors}
    assert nodes == {"worker-002", "worker-005"}
    harness.sim.run()
    assert job.is_local_job is True


def test_perfect_locality_for_disjoint_apps(harness):
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    j0 = harness.make_job("a-0", [0, 1])
    j1 = harness.make_job("a-1", [4, 5])
    d0.submit_job(j0)
    d1.submit_job(j1)
    harness.sim.run()
    assert j0.is_local_job is True
    assert j1.is_local_job is True


def test_repeated_contention_is_maxmin_fair_over_time(harness):
    """Fig. 3 dynamics: both apps repeatedly demand the same hot blocks.

    The hot executors are handed back at job boundaries and MINLOCALITY
    steers them to the less-localized application, so with a locality wait
    long enough to survive one job's service time both applications end up
    with perfect job locality instead of one starving.
    """
    harness.delay_wait = 1.0  # outlive the 0.5 s blocking task
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    for k in range(6):
        harness.sim.schedule_at(
            k * 2.0, d0.submit_job, harness.make_job("a-0", [k % 2])
        )
        harness.sim.schedule_at(
            k * 2.0 + 0.01, d1.submit_job, harness.make_job("a-1", [k % 2])
        )
    harness.sim.run()
    assert d0.app.local_job_fraction == pytest.approx(1.0)
    assert d1.app.local_job_fraction == pytest.approx(1.0)


def test_quota_enforced(harness):
    manager = make_manager(harness, num_apps=2)  # quota = 4
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [0, 1, 2, 3, 4, 5])
    driver.submit_job(job)
    assert driver.executor_count <= 4


def test_idle_undesired_executors_released_on_next_round(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    j1 = harness.make_job("a-0", [0, 1])
    driver.submit_job(j1)
    harness.sim.run()
    held_after_j1 = {e.node_id for e in driver.executors}
    # New job wants totally different blocks: Custody swaps executors.
    j2 = harness.make_job("a-0", [6, 7])
    driver.submit_job(j2)
    held_for_j2 = {e.node_id for e in driver.executors}
    assert held_for_j2 == {"worker-006", "worker-007"}
    assert held_after_j1 != held_for_j2
    harness.sim.run()
    assert j2.is_local_job is True


def test_job_finish_triggers_reallocation(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    rounds0 = manager.allocation_rounds
    driver.submit_job(harness.make_job("a-0", [0]))
    harness.sim.run()
    # At least two rounds: one on submit, one on finish.
    assert manager.allocation_rounds >= rounds0 + 2


def test_historical_starvation_prioritised(harness):
    """An app whose decided jobs were non-local wins the next hot executor."""
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    # a-0 runs a job forced remote (no replica overlap with granted set is
    # impossible here, so emulate history by running a job and then marking
    # its tasks non-local).
    j_hist = harness.make_job("a-0", [3])
    d0.submit_job(j_hist)
    harness.sim.run()
    for t in j_hist.input_tasks:
        t.was_local = False  # rewrite history: a-0 was starved
    # Both apps now submit single-task jobs wanting block 0.
    ja = harness.make_job("a-0", [0])
    jb = harness.make_job("a-1", [0])
    d1.submit_job(jb)  # b asks first
    d0.submit_job(ja)  # reallocation on a's submit sees both demands
    # a-0 (0% local history) must be ranked below a-1 by MINLOCALITY; since
    # worker-000 has one executor, whoever holds it wins — check via keys.
    assert d0.app.locality_key() < d1.app.locality_key()


def test_fill_disabled_grants_only_locality(harness):
    manager = make_manager(harness, fill=False)
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [0])
    driver.submit_job(job)
    assert driver.executor_count == 1  # no filler executors


def test_custody_plan_records(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    driver.submit_job(harness.make_job("a-0", [0, 1]))
    assert manager.last_plan is not None
    assert manager.last_plan.total_granted >= 2
