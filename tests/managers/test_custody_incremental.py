"""The incremental Custody control plane: cache behaviour and equivalence.

The demand cache may only change *when* work happens, never *what* is
decided: every scenario here runs once per engine and asserts identical
plan streams, grants and locality outcomes, then pins the cache hit/miss
accounting and its three invalidation triggers (demand epoch, NameNode
version, watched-node pool changes).
"""

import pytest

from repro.managers.custody import CustodyManager


def make_manager(harness, num_apps=2, **kw):
    return CustodyManager(
        harness.sim, harness.cluster, num_apps=num_apps, validate=True, **kw
    )


def record_plans(manager):
    """Shadow ``reallocate`` with a signature-recording wrapper."""
    signatures = []
    original = manager.reallocate

    def recording():
        plan = original()
        signatures.append(plan.signature())
        return plan

    manager.reallocate = recording
    return signatures


def run_churn_scenario(harness_cls, engine):
    """A contended two-app workload; returns its observable decision trail."""
    harness = harness_cls()
    manager = make_manager(harness, alloc_engine=engine)
    signatures = record_plans(manager)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    jobs = []
    for k in range(5):
        for driver, blocks in ((d0, [k % 4, (k + 1) % 4]), (d1, [(k + 2) % 8, 5])):
            job = harness.make_job(driver.app_id, blocks)
            jobs.append(job)
            harness.sim.schedule_at(k * 1.5, driver.submit_job, job)
    harness.sim.run()
    return {
        "signatures": signatures,
        "rounds": manager.allocation_rounds,
        "localities": [j.is_local_job for j in jobs],
        "owners": sorted(
            (e.executor_id, e.owner) for e in harness.cluster.executors
        ),
    }


def test_engines_identical_under_churn(harness):
    """Reference and incremental runs take identical decisions throughout."""
    harness_cls = type(harness)
    assert run_churn_scenario(harness_cls, "reference") == run_churn_scenario(
        harness_cls, "incremental"
    )


def test_steady_state_rounds_hit_the_cache(harness):
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    d0.submit_job(harness.make_job("a-0", [0, 1]))
    d1.submit_job(harness.make_job("a-1", [4, 5]))
    harness.sim.run()
    manager.reallocate()  # settle any post-run releases
    manager.reallocate()  # rebuild entries for the settled state
    hits, misses = manager.demand_cache_hits, manager.demand_cache_misses
    plan = manager.reallocate()  # nothing changed: every demand is a hit
    assert manager.demand_cache_hits == hits + 2
    assert manager.demand_cache_misses == misses
    assert not plan.grants


def test_job_submission_dirties_only_its_app(harness):
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    d0.submit_job(harness.make_job("a-0", [0]))
    d1.submit_job(harness.make_job("a-1", [5]))
    harness.sim.run()
    manager.reallocate()
    manager.reallocate()
    hits, misses = manager.demand_cache_hits, manager.demand_cache_misses
    d0.submit_job(harness.make_job("a-0", [2]))  # triggers one round
    # a-0's epoch moved (rebuild); a-1 is untouched (cache hit).
    assert manager.demand_cache_misses == misses + 1
    assert manager.demand_cache_hits == hits + 1


def test_namenode_mutation_invalidates_every_entry(harness):
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    d0.submit_job(harness.make_job("a-0", [0]))
    d1.submit_job(harness.make_job("a-1", [5]))
    harness.sim.run()
    manager.reallocate()
    manager.reallocate()
    block = harness.entry.blocks[0]
    harness.hdfs.namenode.add_cached_replica(block.block_id, "worker-003")
    hits, misses = manager.demand_cache_hits, manager.demand_cache_misses
    manager.reallocate()
    assert manager.demand_cache_misses == misses + 2
    assert manager.demand_cache_hits == hits


def test_watched_pool_change_invalidates_the_watcher(harness):
    """Pool movement on a watched replica node dirties only the watcher."""
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    # Both apps want block 3's node; the single executor there goes to a-0,
    # so a-1's task stays unsatisfied and its demand watches worker-003.
    d0.submit_job(harness.make_job("a-0", [3]))
    d1.submit_job(harness.make_job("a-1", [3]))
    manager.reallocate()
    manager.reallocate()  # settle: entries rebuilt for the stable state
    entry = manager._demand_cache["a-1"]
    assert "worker-003" in entry.watch_nodes
    hits, misses = manager.demand_cache_hits, manager.demand_cache_misses
    executor = next(
        e for e in harness.cluster.executors if e.node_id == "worker-003"
    )
    manager._note_pool_change(executor)  # free pool moved on the watched node
    manager.reallocate()
    assert manager.demand_cache_misses == misses + 1  # a-1 rebuilt
    assert manager.demand_cache_hits == hits + 1  # a-0 untouched


def test_fault_injection_bypasses_the_cache(harness):
    class OmniscientInjector:
        def node_reachable(self, node_id):
            return True

        def node_down(self, node_id):
            return False

    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    manager.fault_injector = OmniscientInjector()
    assert manager._incremental_enabled is False
    d0.submit_job(harness.make_job("a-0", [0]))
    harness.sim.run()
    manager.reallocate()
    manager.reallocate()
    assert manager.demand_cache_hits == 0
    assert manager.demand_cache_misses == 0
    assert not manager._demand_cache


def test_incremental_is_the_default_engine(harness):
    manager = make_manager(harness)
    assert manager.alloc_engine == "incremental"
    assert manager.allocator.engine == "incremental"


def test_unknown_engine_rejected(harness):
    with pytest.raises(ValueError, match="unknown allocation engine"):
        make_manager(harness, alloc_engine="bogus")
