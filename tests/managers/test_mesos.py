"""MesosManager: offer/accept with delay-scheduling rejections."""

import pytest

from repro.managers.mesos import MesosManager


def make_manager(harness, num_apps=2, offer_interval=1.0):
    return MesosManager(
        harness.sim, harness.cluster, num_apps=num_apps, offer_interval=offer_interval
    )


def test_invalid_offer_interval():
    import numpy as np

    from tests.managers.conftest import ManagerHarness

    h = ManagerHarness()
    with pytest.raises(ValueError):
        MesosManager(h.sim, h.cluster, num_apps=2, offer_interval=0.0)


def test_local_offer_accepted_immediately(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    driver.submit_job(harness.make_job("a-0", [0]))
    # The executor on worker-000 must be among those accepted.
    assert "worker-000" in {e.node_id for e in driver.executors}


def test_nonlocal_offers_rejected_then_accepted_after_wait(harness):
    manager = make_manager(harness, offer_interval=0.5)
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [0])
    # Occupy worker-000's executor with another app so the offer is never local.
    other = harness.add_app(manager, "a-zzz")
    blocker = harness.cluster.executors[0]
    blocker.allocate("a-zzz")
    other.attach_executor(blocker)
    driver.submit_job(job)
    assert manager.offers_rejected > 0  # everyone declined the non-local offers
    harness.sim.run()
    assert job.finished
    assert job.input_tasks[0].was_local is False  # had to settle


def test_executors_released_when_queue_drains(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [0, 1])
    driver.submit_job(job)
    harness.sim.run()
    assert job.finished
    assert driver.executor_count == 0  # fine-grained: returned to the pool


def test_quota_caps_acceptance(harness):
    manager = make_manager(harness, num_apps=2)  # quota 4
    driver = harness.add_app(manager, "a-0")
    driver.submit_job(harness.make_job("a-0", [0, 1, 2, 3, 4, 5]))
    assert driver.executor_count <= 4


def test_offer_counters_accumulate(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    driver.submit_job(harness.make_job("a-0", [0]))
    harness.sim.run()
    assert manager.offers_made > 0


def test_two_apps_share_via_offers(harness):
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    j0 = harness.make_job("a-0", [0, 1])
    j1 = harness.make_job("a-1", [2, 3])
    d0.submit_job(j0)
    d1.submit_job(j1)
    harness.sim.run()
    assert j0.finished and j1.finished
    assert j0.is_local_job and j1.is_local_job  # offers found the local homes


def test_retry_timer_eventually_places_unwanted_executor(harness):
    # A job whose block-9 demand can never be local (only 8 workers exist,
    # block indices wrap), so use a block on a worker whose executor is
    # owned: the task must eventually accept a non-local offer via retry.
    manager = make_manager(harness, offer_interval=0.25)
    other = harness.add_app(manager, "a-other")
    blocker = harness.cluster.executors[3]
    blocker.allocate("a-other")
    other.attach_executor(blocker)
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [3])
    driver.submit_job(job)
    harness.sim.run()
    assert job.finished
