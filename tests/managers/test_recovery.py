"""RecoveryLog, lease math, and the versioned on-disk recovery state."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.managers.recovery import (
    Lease,
    ManagerCheckpoint,
    RecoveryCoordinator,
    RecoveryLog,
    WalEntry,
    load_recovery_state,
    save_recovery_state,
)
from repro.simulation.engine import Simulation

pytestmark = pytest.mark.recovery


class TestRecoveryLog:
    def test_append_assigns_total_order(self):
        log = RecoveryLog()
        a = log.append(1.0, "grant", executor="e0", app="a0")
        b = log.append(2.0, "release", executor="e0", app="a0")
        assert (a.seq, b.seq) == (1, 2)
        assert log.entries_total == 2
        assert a.args == (("app", "a0"), ("executor", "e0"))

    def test_checkpoint_truncates_covered_prefix(self):
        log = RecoveryLog()
        log.append(1.0, "grant", executor="e0")
        log.append(2.0, "grant", executor="e1")
        log.install_checkpoint(ManagerCheckpoint(seq=1, taken_at=1.5))
        assert [e.seq for e in log.entries] == [2]
        assert log.checkpoints_taken == 1

    def test_checkpoint_due_uses_interval(self):
        log = RecoveryLog(checkpoint_interval=10.0)
        assert not log.checkpoint_due(9.9)
        assert log.checkpoint_due(10.0)
        log.install_checkpoint(ManagerCheckpoint(seq=0, taken_at=10.0))
        assert not log.checkpoint_due(19.0)
        assert log.checkpoint_due(20.0)

    def test_flush_lag_splits_durable_and_lost(self):
        log = RecoveryLog(flush_lag=5.0)
        log.append(1.0, "grant", executor="e0")
        log.append(7.0, "grant", executor="e1")
        log.append(9.0, "grant", executor="e2")
        # Crash at t=10: horizon is 5.0, so entries after it are destroyed.
        assert [e.ts for e in log.durable_entries(10.0)] == [1.0]
        assert [e.ts for e in log.lost_entries(10.0)] == [7.0, 9.0]

    def test_zero_lag_is_synchronous(self):
        log = RecoveryLog()
        log.append(3.0, "grant", executor="e0")
        assert log.lost_entries(3.0) == []
        assert len(log.durable_entries(3.0)) == 1

    @pytest.mark.parametrize(
        "kwargs", [{"checkpoint_interval": 0.0}, {"flush_lag": -1.0}]
    )
    def test_invalid_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            RecoveryLog(**kwargs)


class TestLeaseMath:
    def _coord(self, **kwargs):
        defaults = dict(lease_duration=60.0, lease_renew_interval=10.0)
        defaults.update(kwargs)
        return RecoveryCoordinator(Simulation(), **defaults)

    def test_last_renewal_is_floor_of_ticks(self):
        coord = self._coord()
        # Granted at 7, crash at 43: ticks at 17, 27, 37 → last is 37.
        assert coord._last_renewal(7.0, 43.0) == 37.0

    def test_last_renewal_before_first_tick(self):
        coord = self._coord()
        assert coord._last_renewal(7.0, 9.0) == 7.0

    def test_lease_live_within_duration_of_last_renewal(self):
        coord = self._coord()
        # Last renewal 37, expiry 97: a restart at 97 re-adopts, 97+ε expires.
        assert coord.lease_live(7.0, 43.0, 97.0)
        assert not coord.lease_live(7.0, 43.0, 97.1)

    def test_short_lease_dies_during_long_outage(self):
        coord = self._coord(lease_duration=5.0, lease_renew_interval=1.0)
        assert not coord.lease_live(0.0, 10.0, 40.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_duration": 0.0},
            {"lease_renew_interval": 0.0},
            {"reconciliation_window": -1.0},
        ],
    )
    def test_invalid_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            self._coord(**kwargs)

    def test_crash_rejects_nonpositive_outage(self):
        with pytest.raises(ConfigurationError):
            self._coord().crash(0.0)


class TestOnDiskState:
    def _log(self) -> RecoveryLog:
        log = RecoveryLog(flush_lag=2.0)
        log.install_checkpoint(
            ManagerCheckpoint(
                seq=0,
                taken_at=0.0,
                apps=("app-00", "app-01"),
                leases=(Lease("executor-000", "app-00", 1.0),),
                demand_epochs=(("app-00", 3), ("app-01", 1)),
                admission_queue=("job-07",),
            )
        )
        log.append(5.0, "grant", executor="executor-001", app="app-01")
        log.append(9.5, "release", executor="executor-000", app="app-00")
        return log

    def test_round_trip(self, tmp_path):
        log = self._log()
        path = save_recovery_state(log, tmp_path / "state.json", at=10.0)
        state = load_recovery_state(path)
        assert state["at"] == 10.0
        checkpoint = state["checkpoint"]
        assert checkpoint.apps == ("app-00", "app-01")
        assert checkpoint.leases == (Lease("executor-000", "app-00", 1.0),)
        assert checkpoint.demand_epochs == (("app-00", 3), ("app-01", 1))
        assert checkpoint.admission_queue == ("job-07",)
        # Only the durable view persists: the 9.5 entry is past the flush
        # horizon (10 - 2 = 8) and never reaches disk.
        assert [e.ts for e in state["wal"]] == [5.0]
        assert state["wal"][0] == WalEntry(
            seq=1, ts=5.0, op="grant",
            args=(("app", "app-01"), ("executor", "executor-001")),
        )

    def test_format_version_written(self, tmp_path):
        path = save_recovery_state(self._log(), tmp_path / "s.json", at=10.0)
        assert json.loads(path.read_text())["format_version"] == 1

    def test_unsupported_version_rejected(self, tmp_path):
        path = save_recovery_state(self._log(), tmp_path / "s.json", at=10.0)
        doc = json.loads(path.read_text())
        doc["format_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ConfigurationError, match="format version 99"):
            load_recovery_state(path)

    def test_missing_version_rejected(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"at": 1.0, "checkpoint": None, "wal": []}))
        with pytest.raises(ConfigurationError, match="format version None"):
            load_recovery_state(path)

    def test_empty_log_round_trips(self, tmp_path):
        path = save_recovery_state(RecoveryLog(), tmp_path / "s.json", at=0.0)
        state = load_recovery_state(path)
        assert state["checkpoint"] is None and state["wal"] == []


class TestCoordinatorBookkeeping:
    def test_grant_release_cycle_tracks_leases(self):
        sim = Simulation()
        coord = RecoveryCoordinator(sim)
        coord.note_register("app-00")
        coord.note_grant("executor-000", "app-00")
        assert coord.leases == {
            "executor-000": Lease("executor-000", "app-00", 0.0)
        }
        coord.note_release("executor-000", "app-00")
        assert coord.leases == {}
        assert coord.log.entries_total == 3

    def test_checkpoint_piggybacks_on_wal_appends(self):
        sim = Simulation()
        coord = RecoveryCoordinator(sim, checkpoint_interval=10.0)
        coord.note_grant("executor-000", "app-00")
        assert coord.log.checkpoints_taken == 0
        sim.schedule(15.0, lambda: coord.note_grant("executor-001", "app-00"))
        sim.run()
        assert coord.log.checkpoints_taken == 1
        assert coord.log.checkpoint.leases == (
            Lease("executor-000", "app-00", 0.0),
            Lease("executor-001", "app-00", 15.0),
        )

    def test_state_machine_starts_up(self):
        coord = RecoveryCoordinator(Simulation())
        assert coord.state == "up"
        assert coord.available
        assert coord.rounds_enabled
        assert coord.accepting_submissions
