"""Round coalescing: N same-instant triggers cost one allocation round.

``coalesce=False`` (the library default) keeps the seed's synchronous
semantics — every demand-changing hook runs a full round inline.  With
``coalesce=True`` (the experiment runner's default) the first trigger at an
instant defers one round via ``Simulation.defer`` and later same-instant
triggers are absorbed, counted in ``PerfCounters.alloc_rounds_coalesced``.
"""

from repro.managers.custody import CustodyManager
from repro.managers.mesos import MesosManager
from repro.managers.standalone import StandaloneManager
from repro.managers.yarn import YarnManager
from repro.metrics.collector import PerfCounters


def test_synchronous_default_runs_one_round_per_trigger(harness):
    counters = PerfCounters()
    manager = CustodyManager(
        harness.sim, harness.cluster, num_apps=2, counters=counters
    )
    driver = harness.add_app(manager, "a-0")
    for k in range(3):
        driver.submit_job(harness.make_job("a-0", [k]))
    assert counters.alloc_rounds == 3
    assert counters.alloc_rounds_coalesced == 0
    assert driver.executor_count == 3  # grants landed synchronously


def test_coalesced_same_instant_submits_cost_one_round(harness):
    counters = PerfCounters()
    manager = CustodyManager(
        harness.sim, harness.cluster, num_apps=2,
        coalesce=True, counters=counters,
    )
    driver = harness.add_app(manager, "a-0")
    for k in range(4):
        driver.submit_job(harness.make_job("a-0", [k]))
    # No round yet: one is deferred, three triggers were absorbed.
    assert manager.round_pending
    assert counters.alloc_rounds == 0
    assert counters.alloc_rounds_coalesced == 3
    harness.sim.step()  # flushes the deferred round at this instant
    assert not manager.round_pending
    assert counters.alloc_rounds == 1
    # The single coalesced round saw all four jobs' demands at once.
    assert {e.node_id for e in driver.executors} >= {
        "worker-000", "worker-001", "worker-002", "worker-003"
    }


def test_coalesced_round_reruns_at_later_instants(harness):
    counters = PerfCounters()
    manager = CustodyManager(
        harness.sim, harness.cluster, num_apps=2,
        coalesce=True, counters=counters,
    )
    driver = harness.add_app(manager, "a-0")
    harness.sim.schedule_at(1.0, driver.submit_job, harness.make_job("a-0", [0]))
    harness.sim.schedule_at(2.0, driver.submit_job, harness.make_job("a-0", [1]))
    harness.sim.run()
    # Different instants coalesce nothing: one round each, plus any rounds
    # job completions trigger.
    assert counters.alloc_rounds_coalesced == 0
    assert counters.alloc_rounds >= 2


def test_all_managers_accept_the_coalescing_knob(harness):
    """Every policy wires coalesce/counters through to the base machinery."""
    import numpy as np

    counters = PerfCounters()
    managers = [
        CustodyManager(harness.sim, harness.cluster, num_apps=4,
                       coalesce=True, counters=counters),
        StandaloneManager(harness.sim, harness.cluster, num_apps=4,
                          rng=np.random.default_rng(0),
                          coalesce=True, counters=counters),
        YarnManager(harness.sim, harness.cluster, num_apps=4,
                    coalesce=True, counters=counters),
        MesosManager(harness.sim, harness.cluster, num_apps=4,
                     coalesce=True, counters=counters),
    ]
    for manager in managers:
        assert manager.coalesce is True
        assert manager.counters is counters
        manager.on_executors_changed()
        assert manager.round_pending  # deferred, not run inline
    harness.sim.run()
    for manager in managers:
        assert not manager.round_pending
    assert counters.alloc_rounds == len(managers)
