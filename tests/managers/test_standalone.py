"""StandaloneManager: static, data-unaware equal shares."""

import numpy as np
import pytest

from repro.managers.standalone import StandaloneManager


def make_manager(harness, num_apps=2, spread=False, seed=0):
    return StandaloneManager(
        harness.sim,
        harness.cluster,
        num_apps=num_apps,
        rng=np.random.default_rng(seed),
        spread=spread,
    )


def test_allocates_full_share_at_registration(harness):
    manager = make_manager(harness, num_apps=2)
    driver = harness.add_app(manager, "a-0")
    assert driver.executor_count == 4  # 8 / 2


def test_two_apps_split_the_cluster(harness):
    manager = make_manager(harness, num_apps=2)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    owned0 = {e.executor_id for e in d0.executors}
    owned1 = {e.executor_id for e in d1.executors}
    assert len(owned0) == len(owned1) == 4
    assert not owned0 & owned1


def test_allocation_is_static_across_jobs(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    before = {e.executor_id for e in driver.executors}
    driver.submit_job(harness.make_job("a-0", [0, 1]))
    harness.sim.run()
    after = {e.executor_id for e in driver.executors}
    assert before == after


def test_random_mode_varies_with_seed(harness):
    manager = make_manager(harness, seed=1)
    d = harness.add_app(manager, "a-0")
    picked1 = {e.executor_id for e in d.executors}

    from tests.managers.conftest import ManagerHarness

    h2 = ManagerHarness()
    manager2 = make_manager(h2, seed=2)
    d2 = h2.add_app(manager2, "a-0")
    picked2 = {e.executor_id for e in d2.executors}
    assert picked1 != picked2  # different random subsets (w.h.p. for these seeds)


def test_spread_mode_covers_distinct_nodes(harness):
    manager = make_manager(harness, num_apps=2, spread=True)
    driver = harness.add_app(manager, "a-0")
    nodes = {e.node_id for e in driver.executors}
    assert len(nodes) == 4  # one executor per node while nodes remain


def test_job_hooks_are_noops(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    rounds_before = manager.allocation_rounds
    driver.submit_job(harness.make_job("a-0", [0]))
    harness.sim.run()
    assert manager.allocation_rounds == rounds_before


def test_executes_jobs_end_to_end(harness):
    manager = make_manager(harness, num_apps=2)
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [0, 1, 2, 3])
    driver.submit_job(job)
    harness.sim.run()
    assert job.finished
    assert all(t.was_local is not None for t in job.input_tasks)
