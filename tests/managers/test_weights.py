"""Weighted max-min fairness: per-application quota weights."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.managers.standalone import StandaloneManager
from repro.managers.yarn import YarnManager


class TestQuotaOf:
    def test_equal_share_without_weights(self, harness):
        manager = YarnManager(harness.sim, harness.cluster, num_apps=2)
        assert manager.quota_of("a-0") == manager.quota == 4

    def test_weighted_shares(self, harness):
        manager = YarnManager(
            harness.sim, harness.cluster, num_apps=2,
            weights={"big": 3.0, "small": 1.0},
        )
        assert manager.quota_of("big") == 6  # 8 * 3/4
        assert manager.quota_of("small") == 2

    def test_unknown_app_defaults_to_unit_weight(self, harness):
        manager = YarnManager(
            harness.sim, harness.cluster, num_apps=2, weights={"a": 1.0}
        )
        assert manager.quota_of("stranger") == manager.quota_of("a")

    def test_minimum_one_executor(self, harness):
        manager = YarnManager(
            harness.sim, harness.cluster, num_apps=2,
            weights={"whale": 1000.0, "shrimp": 1.0},
        )
        assert manager.quota_of("shrimp") == 1

    def test_nonpositive_weight_rejected(self, harness):
        with pytest.raises(ConfigurationError):
            YarnManager(
                harness.sim, harness.cluster, num_apps=2, weights={"a": 0.0}
            )


class TestStandaloneWeighted:
    def test_static_allocation_follows_weights(self, harness):
        manager = StandaloneManager(
            harness.sim, harness.cluster, num_apps=2,
            weights={"a-big": 3.0, "a-small": 1.0},
        )
        big = harness.add_app(manager, "a-big")
        small = harness.add_app(manager, "a-small")
        assert big.executor_count == 6
        assert small.executor_count == 2


class TestEndToEndWeighted:
    BASE = dict(
        workload="wordcount", num_nodes=16, num_apps=2, jobs_per_app=3, seed=13
    )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_apps=2, app_weights=(1.0,), **{
                k: v for k, v in self.BASE.items() if k != "num_apps"
            })
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_apps=2, app_weights=(1.0, -1.0), **{
                k: v for k, v in self.BASE.items() if k != "num_apps"
            })

    @pytest.mark.parametrize("manager", ["standalone", "yarn", "custody", "mesos"])
    def test_weighted_runs_finish(self, manager):
        config = ExperimentConfig(
            manager=manager, app_weights=(3.0, 1.0), **self.BASE
        )
        result = run_experiment(config)
        assert result.metrics.unfinished_jobs == 0

    def test_heavier_app_holds_more_executors_under_custody(self):
        config = ExperimentConfig(
            manager="custody", app_weights=(3.0, 1.0),
            timeline_enabled=True, **self.BASE,
        )
        result = run_experiment(config)
        grants = {"app-00": 0, "app-01": 0}
        for record in result.timeline.of_kind("executor.grant"):
            grants[record.get("app")] += 1
        assert grants["app-00"] > grants["app-01"]
