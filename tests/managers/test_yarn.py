"""YarnManager: demand-tracking pools without data awareness."""

from repro.managers.yarn import YarnManager


def make_manager(harness, num_apps=2):
    return YarnManager(harness.sim, harness.cluster, num_apps=num_apps)


def test_nothing_at_registration(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    assert driver.executor_count == 0


def test_grows_to_match_outstanding_tasks(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    driver.submit_job(harness.make_job("a-0", [0, 1, 2]))
    assert driver.executor_count == 3  # 3 tasks, 1 slot each


def test_growth_capped_by_quota(harness):
    manager = make_manager(harness, num_apps=2)  # quota 4
    driver = harness.add_app(manager, "a-0")
    driver.submit_job(harness.make_job("a-0", [0, 1, 2, 3, 4, 5]))
    assert driver.executor_count == 4


def test_choice_is_data_unaware(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    driver.submit_job(harness.make_job("a-0", [6, 7]))
    # First-come executors, not the block holders.
    nodes = sorted(e.node_id for e in driver.executors)
    assert nodes == ["worker-000", "worker-001"]


def test_shrinks_when_jobs_finish(harness):
    manager = make_manager(harness)
    driver = harness.add_app(manager, "a-0")
    job = harness.make_job("a-0", [0, 1, 2])
    driver.submit_job(job)
    harness.sim.run()
    assert job.finished
    assert driver.executor_count == 0  # all reclaimed after the job


def test_jobs_complete_end_to_end(harness):
    manager = make_manager(harness)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    j0 = harness.make_job("a-0", [0, 1])
    j1 = harness.make_job("a-1", [2, 3])
    d0.submit_job(j0)
    d1.submit_job(j1)
    harness.sim.run()
    assert j0.finished and j1.finished


def test_underprovisioned_app_served_first(harness):
    manager = make_manager(harness, num_apps=2)
    d0 = harness.add_app(manager, "a-0")
    d1 = harness.add_app(manager, "a-1")
    d0.submit_job(harness.make_job("a-0", [0]))
    # a-1 now submits a bigger job; resize must not strip a-0.
    d1.submit_job(harness.make_job("a-1", [1, 2, 3]))
    assert d0.executor_count >= 1
    assert d1.executor_count == 3
