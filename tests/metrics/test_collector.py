"""MetricsCollector aggregation."""

import pytest

from repro.hdfs.blocks import Block
from repro.metrics.collector import MetricsCollector
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


def finished_job(job_id, app_id, locals_, jct=10.0, workload="wc"):
    tasks = []
    for i, is_local in enumerate(locals_):
        t = Task(
            f"{job_id}-t{i}", job_id=job_id, app_id=app_id, stage_index=0,
            kind=TaskKind.INPUT, cpu_time=1.0,
            block=Block(f"{job_id}-b{i}", path="/f", index=i, size=1.0),
        )
        t.submitted_at, t.started_at, t.finished_at = 0.0, 1.0, 5.0
        t.was_local = is_local
        tasks.append(t)
    job = Job(job_id, app_id, [Stage(0, tasks)], workload=workload)
    job.submitted_at, job.finished_at = 0.0, jct
    return job


def make_apps():
    a0, a1 = Application("a-0"), Application("a-1")
    a0.add_job(finished_job("j1", "a-0", [True, True], jct=10.0, workload="wc"))
    a0.add_job(finished_job("j2", "a-0", [True, False], jct=20.0, workload="sort"))
    a1.add_job(finished_job("j3", "a-1", [False, False], jct=30.0, workload="wc"))
    return [a0, a1]


def test_counts():
    m = MetricsCollector().collect(make_apps())
    assert m.finished_jobs == 3
    assert m.unfinished_jobs == 0


def test_locality_stats():
    m = MetricsCollector().collect(make_apps())
    assert m.locality_mean == pytest.approx((1.0 + 0.5 + 0.0) / 3)
    assert m.locality_min == 0.0


def test_local_job_fraction_per_app():
    m = MetricsCollector().collect(make_apps())
    assert m.local_job_fraction_per_app == (pytest.approx(0.5), 0.0)
    assert m.min_local_job_fraction == 0.0


def test_jct_and_makespan():
    m = MetricsCollector().collect(make_apps())
    assert m.avg_jct == pytest.approx(20.0)
    assert m.makespan == pytest.approx(30.0)


def test_per_workload_breakdown():
    m = MetricsCollector().collect(make_apps())
    assert m.per_workload_jct["wc"] == pytest.approx(20.0)
    assert m.per_workload_jct["sort"] == pytest.approx(20.0)
    assert m.per_workload_locality["wc"] == pytest.approx(0.5)


def test_scheduler_delay():
    m = MetricsCollector().collect(make_apps())
    assert m.avg_scheduler_delay == pytest.approx(1.0)


def test_fairness_index():
    m = MetricsCollector().collect(make_apps())
    assert 0.0 < m.fairness_index <= 1.0


def test_unfinished_jobs_counted():
    apps = make_apps()
    unfinished = finished_job("j9", "a-0", [True])
    unfinished.finished_at = None
    apps[0].add_job(unfinished)
    m = MetricsCollector().collect(apps)
    assert m.unfinished_jobs == 1


def test_empty_apps():
    m = MetricsCollector().collect([Application("a-0")])
    assert m.finished_jobs == 0
    assert m.avg_jct is None
    assert m.locality_mean == 0.0
