"""MetricsCollector edge cases: unfinished work, empty runs, odd workloads."""

import pytest

from repro.hdfs.blocks import Block
from repro.metrics.collector import MetricsCollector, PerfCounters
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


def make_job(job_id, app_id, *, finished=True, workload="wc", n_tasks=2):
    tasks = []
    for i in range(n_tasks):
        t = Task(
            f"{job_id}-t{i}", job_id=job_id, app_id=app_id, stage_index=0,
            kind=TaskKind.INPUT, cpu_time=1.0,
            block=Block(f"{job_id}-b{i}", path="/f", index=i, size=1.0),
        )
        t.submitted_at, t.started_at = 0.0, 1.0
        if finished:
            t.finished_at, t.was_local = 5.0, True
        tasks.append(t)
    job = Job(job_id, app_id, [Stage(0, tasks)], workload=workload)
    job.submitted_at = 0.0
    if finished:
        job.finished_at = 10.0
    return job


def test_unfinished_jobs_excluded_from_every_aggregate():
    app = Application("a-0")
    app.add_job(make_job("done", "a-0"))
    app.add_job(make_job("stuck", "a-0", finished=False))
    m = MetricsCollector().collect([app])
    assert m.finished_jobs == 1
    assert m.unfinished_jobs == 1
    assert m.avg_jct == pytest.approx(10.0)
    assert m.makespan == pytest.approx(10.0)
    # the stuck job contributes nothing to locality or workload tables
    assert m.per_workload_jct == {"wc": pytest.approx(10.0)}


def test_zero_finished_jobs_yields_safe_defaults():
    app = Application("a-0")
    app.add_job(make_job("stuck", "a-0", finished=False))
    m = MetricsCollector().collect([app])
    assert m.finished_jobs == 0
    assert m.unfinished_jobs == 1
    assert m.avg_jct is None
    assert m.makespan is None
    assert m.locality_mean == 0.0
    assert m.per_workload_jct == {}


def test_missing_workload_lands_in_unknown_bucket():
    app = Application("a-0")
    app.add_job(make_job("j1", "a-0", workload=None))
    m = MetricsCollector().collect([app])
    assert "unknown" in m.per_workload_jct
    assert m.per_workload_jct["unknown"] == pytest.approx(10.0)
    assert m.per_workload_locality["unknown"] == pytest.approx(1.0)


def test_no_apps_at_all():
    m = MetricsCollector().collect([])
    assert m.finished_jobs == 0
    assert m.local_job_fraction_per_app == ()
    assert m.min_local_job_fraction == 0.0
    assert m.fairness_index == 1.0


def test_metrics_as_dict_round_trips_to_json_types():
    app = Application("a-0")
    app.add_job(make_job("j1", "a-0"))
    d = MetricsCollector().collect([app]).as_dict()
    assert d["finished_jobs"] == 1
    assert isinstance(d["local_job_fraction_per_app"], list)
    assert d["min_local_job_fraction"] == d["local_job_fraction_per_app"][0]
    assert isinstance(d["per_workload_jct"], dict)


def test_perf_counters_describe_mentions_every_counter():
    perf = PerfCounters(flow_events=3, reallocations=2, recomputes=1,
                        flows_touched=4, links_touched=9, rate_updates=5,
                        recompute_seconds=0.25, realloc_seconds=0.5)
    text = perf.describe()
    assert "links touched: 9" in text
    assert "realloc wall: 0.500s" in text
    assert "recompute wall: 0.250s" in text
    assert "rate updates: 5" in text
