"""Locality metric helpers."""

import pytest

from repro.hdfs.blocks import Block
from repro.metrics.locality import local_job_fraction, locality_gain, per_job_locality
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


def job_with_locality(job_id, locals_, app_id="a-0"):
    tasks = []
    for i, is_local in enumerate(locals_):
        t = Task(
            f"{job_id}-t{i}", job_id=job_id, app_id=app_id, stage_index=0,
            kind=TaskKind.INPUT, cpu_time=1.0,
            block=Block(f"{job_id}-b{i}", path="/f", index=i, size=1.0),
        )
        t.was_local = is_local
        tasks.append(t)
    return Job(job_id, app_id, [Stage(0, tasks)])


def test_per_job_locality_fractions():
    jobs = [
        job_with_locality("j1", [True, True]),
        job_with_locality("j2", [True, False, False, False]),
    ]
    assert per_job_locality(jobs) == [1.0, 0.25]


def test_per_job_locality_skips_undecided():
    decided = job_with_locality("j1", [True])
    undecided = job_with_locality("j2", [True, None])
    assert per_job_locality([decided, undecided]) == [1.0]


def test_local_job_fraction_per_app():
    app = Application("a-0")
    app.add_job(job_with_locality("j1", [True, True]))
    app.add_job(job_with_locality("j2", [True, False]))
    app.add_job(job_with_locality("j3", [True, True]))
    assert local_job_fraction([app]) == [pytest.approx(2 / 3)]


def test_local_job_fraction_empty_app_is_zero():
    assert local_job_fraction([Application("a-0")]) == [0.0]


def test_locality_gain():
    assert locality_gain(0.9, 0.6) == pytest.approx(0.5)
    assert locality_gain(0.6, 0.6) == 0.0
    assert locality_gain(0.0, 0.0) == 0.0
    assert locality_gain(0.5, 0.0) == float("inf")
