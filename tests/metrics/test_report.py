"""Report rendering."""

from repro.metrics.collector import ExperimentMetrics
from repro.metrics.report import comparison_table, format_table


def metrics(locality=0.9, jct=12.0):
    return ExperimentMetrics(
        finished_jobs=10,
        unfinished_jobs=0,
        locality_mean=locality,
        locality_std=0.05,
        locality_min=0.7,
        local_job_fraction_per_app=(0.8, 0.9),
        avg_jct=jct,
        avg_input_stage_time=5.0,
        avg_scheduler_delay=0.4,
        makespan=100.0,
        fairness_index=0.99,
    )


def test_format_table_alignment():
    table = format_table(["name", "value"], [["custody", 1.234567], ["spark", None]])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert "1.235" in table
    assert "-" in lines[-1]  # None rendered as dash


def test_format_table_title():
    table = format_table(["a"], [[1]], title="Figure 7")
    assert table.splitlines()[0] == "Figure 7"


def test_comparison_table_contains_policies_and_numbers():
    table = comparison_table({"spark": metrics(0.6, 20.0), "custody": metrics(0.9, 15.0)})
    assert "spark" in table
    assert "custody" in table
    assert "90" in table  # locality rendered as percent
