"""Concurrency series and sparkline rendering."""

import pytest

from repro.metrics.utilization import UtilizationReport, analyze_utilization
from repro.simulation.timeline import Timeline


def make_timeline(records):
    """records: list of (time, kind, subject, detail-dict)."""
    times = iter([r[0] for r in records])
    tl = Timeline(clock=lambda: next(times))
    for _t, kind, subject, detail in records:
        tl.record(kind, subject, **detail)
    return tl


def report_with_series(series):
    return UtilizationReport(
        span=1.0, total_slots=1, busy_slot_seconds=1.0, slot_utilization=1.0,
        peak_concurrency=1, mean_concurrency=1.0, concurrency_series=series,
    )


def test_series_integrates_to_busy_time():
    tl = make_timeline(
        [
            (0.0, "task.start", "t0", {"executor": "e0"}),
            (5.0, "task.start", "t1", {"executor": "e1"}),
            (10.0, "task.finish", "t0", {}),
            (10.0, "task.finish", "t1", {}),
        ]
    )
    report = analyze_utilization(tl, total_slots=4)
    bucket_width = report.span / len(report.concurrency_series)
    integral = sum(report.concurrency_series) * bucket_width
    assert integral == pytest.approx(report.busy_slot_seconds, rel=1e-6)


def test_series_peaks_where_overlap_is():
    tl = make_timeline(
        [
            (0.0, "task.start", "t0", {"executor": "e0"}),
            (4.0, "task.start", "t1", {"executor": "e1"}),
            (6.0, "task.finish", "t0", {}),
            (10.0, "task.finish", "t1", {}),
        ]
    )
    report = analyze_utilization(tl, total_slots=4)
    series = report.concurrency_series
    assert series[len(series) // 2] == pytest.approx(2.0)  # t=5: both running
    assert series[0] == pytest.approx(1.0)  # t=0: one task


def test_sparkline_length_capped():
    report = report_with_series(tuple(float(i % 7) for i in range(500)))
    assert len(report.sparkline(width=40)) == 40


def test_sparkline_short_series_uncompressed():
    report = report_with_series((0.0, 1.0, 2.0))
    assert len(report.sparkline(width=40)) == 3


def test_sparkline_empty_series():
    assert report_with_series(()).sparkline() == ""


def test_sparkline_monotone_levels():
    report = report_with_series((0.0, 1.0, 2.0, 3.0))
    spark = report.sparkline()
    blocks = " ▁▂▃▄▅▆▇█"
    levels = [blocks.index(ch) for ch in spark]
    assert levels == sorted(levels)
    assert levels[-1] == len(blocks) - 1  # max maps to the full block


def test_describe_includes_profile():
    tl = make_timeline(
        [
            (0.0, "task.start", "t0", {"executor": "e0"}),
            (1.0, "task.finish", "t0", {}),
        ]
    )
    report = analyze_utilization(tl, total_slots=1)
    assert "profile:" in report.describe()
