"""Timing metric helpers."""

import pytest

from repro.hdfs.blocks import Block
from repro.metrics.timings import (
    average_completion_time,
    average_input_stage_time,
    average_scheduler_delay,
    makespan,
)
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


def timed_job(job_id, submitted, finished, task_times=((0.0, 1.0),)):
    tasks = []
    for i, (start, end) in enumerate(task_times):
        t = Task(
            f"{job_id}-t{i}", job_id=job_id, app_id="a", stage_index=0,
            kind=TaskKind.INPUT, cpu_time=1.0,
            block=Block(f"{job_id}-b{i}", path="/f", index=i, size=1.0),
        )
        t.submitted_at, t.started_at, t.finished_at = submitted, start, end
        tasks.append(t)
    job = Job(job_id, "a", [Stage(0, tasks)])
    job.submitted_at, job.finished_at = submitted, finished
    return job


def test_average_completion_time():
    jobs = [timed_job("j1", 0.0, 10.0), timed_job("j2", 5.0, 25.0)]
    assert average_completion_time(jobs) == pytest.approx(15.0)


def test_average_completion_time_empty():
    assert average_completion_time([]) is None


def test_average_input_stage_time():
    job = timed_job("j", 0.0, 10.0, task_times=((1.0, 4.0), (2.0, 9.0)))
    assert average_input_stage_time([job]) == pytest.approx(8.0)  # 9 - 1


def test_average_scheduler_delay():
    job = timed_job("j", 0.0, 10.0, task_times=((2.0, 4.0), (3.0, 9.0)))
    tasks = job.input_tasks
    assert average_scheduler_delay(tasks) == pytest.approx(2.5)


def test_scheduler_delay_input_only_filter():
    shuffle = Task(
        "s", job_id="j", app_id="a", stage_index=1,
        kind=TaskKind.SHUFFLE, cpu_time=1.0, shuffle_bytes=1.0,
    )
    shuffle.submitted_at, shuffle.started_at = 0.0, 9.0
    assert average_scheduler_delay([shuffle]) is None
    assert average_scheduler_delay([shuffle], input_only=False) == pytest.approx(9.0)


def test_makespan():
    jobs = [timed_job("j1", 2.0, 10.0), timed_job("j2", 5.0, 30.0)]
    assert makespan(jobs) == pytest.approx(28.0)


def test_makespan_empty():
    assert makespan([]) is None
