"""Utilization analysis from timelines."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.utilization import analyze_utilization
from repro.simulation.timeline import Timeline


def make_timeline(records):
    """records: list of (time, kind, subject, detail-dict)."""
    times = iter([r[0] for r in records])
    tl = Timeline(clock=lambda: next(times))
    for _t, kind, subject, detail in records:
        tl.record(kind, subject, **detail)
    return tl


class TestSyntheticTimelines:
    def test_single_task(self):
        tl = make_timeline(
            [
                (0.0, "task.start", "t0", {"executor": "e0"}),
                (4.0, "task.finish", "t0", {}),
            ]
        )
        report = analyze_utilization(tl, total_slots=2)
        assert report.span == pytest.approx(4.0)
        assert report.busy_slot_seconds == pytest.approx(4.0)
        assert report.slot_utilization == pytest.approx(0.5)
        assert report.peak_concurrency == 1
        assert report.mean_concurrency == pytest.approx(1.0)

    def test_overlapping_tasks(self):
        tl = make_timeline(
            [
                (0.0, "task.start", "t0", {"executor": "e0"}),
                (1.0, "task.start", "t1", {"executor": "e1"}),
                (3.0, "task.finish", "t0", {}),
                (4.0, "task.finish", "t1", {}),
            ]
        )
        report = analyze_utilization(tl, total_slots=2)
        assert report.peak_concurrency == 2
        assert report.busy_slot_seconds == pytest.approx(6.0)
        assert report.slot_utilization == pytest.approx(6.0 / 8.0)

    def test_grant_release_counters(self):
        tl = make_timeline(
            [
                (0.0, "executor.grant", "e0", {"app": "a"}),
                (0.0, "executor.grant", "e1", {"app": "a"}),
                (0.5, "task.start", "t0", {"executor": "e0"}),
                (1.0, "task.finish", "t0", {}),
                (2.0, "executor.release", "e0", {"app": "a"}),
            ]
        )
        report = analyze_utilization(tl, total_slots=4)
        assert report.grants_per_app == {"a": 2}
        assert report.releases_per_app == {"a": 1}

    def test_empty_timeline_rejected(self):
        tl = make_timeline([])
        with pytest.raises(ConfigurationError):
            analyze_utilization(tl, total_slots=1)

    def test_bad_slots_rejected(self):
        tl = make_timeline([(0.0, "task.start", "t", {"executor": "e"})])
        with pytest.raises(ConfigurationError):
            analyze_utilization(tl, total_slots=0)

    def test_describe_renders(self):
        tl = make_timeline(
            [
                (0.0, "task.start", "t0", {"executor": "e0"}),
                (1.0, "task.finish", "t0", {}),
            ]
        )
        text = analyze_utilization(tl, total_slots=1).describe()
        assert "slot utilization" in text
        assert "concurrency" in text


class TestRealRun:
    def test_full_run_report_is_sane(self):
        config = ExperimentConfig(
            manager="custody", workload="wordcount", num_nodes=12,
            num_apps=2, jobs_per_app=2, seed=4, timeline_enabled=True,
        )
        result = run_experiment(config)
        total_slots = (
            config.num_nodes * config.executors_per_node * config.executor_slots
        )
        report = analyze_utilization(result.timeline, total_slots)
        assert 0.0 < report.slot_utilization <= 1.0
        assert report.peak_concurrency <= total_slots
        assert report.mean_concurrency <= report.peak_concurrency
        assert report.span <= result.sim_time
