"""Max-min fair rate allocation (progressive filling)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.network.bandwidth import LinkCapacities, maxmin_rates


def caps(**nodes):
    c = LinkCapacities()
    for node, (up, down) in nodes.items():
        c.add_node(node, up, down)
    return c


class TestLinkCapacities:
    def test_add_and_contains(self):
        c = caps(a=(10, 20))
        assert "a" in c
        assert "b" not in c

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            caps(a=(0, 10))
        with pytest.raises(ConfigurationError):
            caps(a=(10, -1))

    def test_contains_requires_both_directions(self):
        # A node is registered only when *both* its uplink and downlink
        # exist; a half-registered node must not claim membership.
        c = caps(a=(10, 20))
        del c.downlink["a"]
        assert "a" not in c
        c = caps(b=(10, 20))
        del c.uplink["b"]
        assert "b" not in c


class TestSingleFlow:
    def test_limited_by_uplink(self):
        c = caps(a=(10, 1000), b=(1000, 1000))
        assert maxmin_rates([("a", "b")], c) == [10.0]

    def test_limited_by_downlink(self):
        c = caps(a=(1000, 1000), b=(1000, 5))
        assert maxmin_rates([("a", "b")], c) == [5.0]

    def test_empty_flow_list(self):
        assert maxmin_rates([], caps(a=(1, 1))) == []

    def test_empty_flow_list_on_empty_capacities(self):
        assert maxmin_rates([], LinkCapacities()) == []

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            maxmin_rates([("a", "zzz")], caps(a=(1, 1)))

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            maxmin_rates([("zzz", "a")], caps(a=(1, 1)))

    def test_unknown_node_in_later_flow_rejected(self):
        c = caps(a=(1, 1), b=(1, 1))
        with pytest.raises(ConfigurationError):
            maxmin_rates([("a", "b"), ("b", "ghost")], c)

    def test_half_registered_node_rejected(self):
        # A node with an uplink but no downlink must fail validation when
        # used as a destination, not silently key-error or mis-allocate.
        c = caps(a=(1, 1), b=(1, 1))
        del c.downlink["b"]
        with pytest.raises(ConfigurationError):
            maxmin_rates([("a", "b")], c)


class TestFairSharing:
    def test_two_flows_share_a_common_uplink(self):
        c = caps(a=(10, 100), b=(100, 100), d=(100, 100))
        rates = maxmin_rates([("a", "b"), ("a", "d")], c)
        assert rates == pytest.approx([5.0, 5.0])

    def test_two_flows_share_a_common_downlink(self):
        c = caps(a=(100, 100), b=(100, 100), d=(100, 8))
        rates = maxmin_rates([("a", "d"), ("b", "d")], c)
        assert rates == pytest.approx([4.0, 4.0])

    def test_independent_flows_get_full_rate(self):
        c = caps(a=(10, 10), b=(10, 10), x=(10, 10), y=(10, 10))
        rates = maxmin_rates([("a", "x"), ("b", "y")], c)
        assert rates == pytest.approx([10.0, 10.0])

    def test_waterfilling_redistributes_slack(self):
        # Flow 1 bottlenecked at a's 2-unit uplink; flow 2 then enjoys the
        # rest of d's 10-unit downlink rather than the naive 5/5 split.
        c = caps(a=(2, 100), b=(100, 100), d=(100, 10))
        rates = maxmin_rates([("a", "d"), ("b", "d")], c)
        assert rates == pytest.approx([2.0, 8.0])

    def test_three_level_waterfill(self):
        # Uplinks 1, 2, 100 into one 12-unit downlink: progressive filling
        # freezes flows at 1, 2, then the remainder 9.
        c = caps(a=(1, 100), b=(2, 100), e=(100, 100), d=(100, 12))
        rates = maxmin_rates([("a", "d"), ("b", "d"), ("e", "d")], c)
        assert rates == pytest.approx([1.0, 2.0, 9.0])

    def test_no_link_exceeds_capacity(self):
        c = caps(a=(3, 7), b=(4, 6), d=(5, 5))
        flows = [("a", "b"), ("a", "d"), ("b", "d"), ("b", "a"), ("d", "a")]
        rates = maxmin_rates(flows, c)
        up_load = {"a": 0.0, "b": 0.0, "d": 0.0}
        down_load = {"a": 0.0, "b": 0.0, "d": 0.0}
        for (src, dst), rate in zip(flows, rates):
            up_load[src] += rate
            down_load[dst] += rate
        for node in up_load:
            assert up_load[node] <= c.uplink[node] + 1e-9
            assert down_load[node] <= c.downlink[node] + 1e-9

    def test_all_flows_get_positive_rate(self):
        c = caps(a=(1, 1), b=(1, 1), d=(1, 1))
        rates = maxmin_rates([("a", "b"), ("b", "d"), ("d", "a"), ("a", "d")], c)
        assert all(r > 0 for r in rates)

    def test_paper_nic_asymmetry(self):
        # 2 Gbps up / 40 Gbps down (paper §VI-A): twenty senders into one
        # receiver are each capped by their own uplink, not the downlink.
        from repro.common.units import GBPS

        nodes = {f"n{i}": (2 * GBPS, 40 * GBPS) for i in range(21)}
        c = caps(**nodes)
        flows = [(f"n{i}", "n20") for i in range(20)]
        rates = maxmin_rates(flows, c)
        assert rates == pytest.approx([2 * GBPS] * 20)


class TestLoopback:
    def test_loopback_flow_gets_infinite_rate(self):
        c = caps(a=(1, 1))
        rates = maxmin_rates([("a", "a")], c)
        assert rates[0] == float("inf")

    def test_loopback_does_not_consume_capacity(self):
        c = caps(a=(10, 100), b=(100, 100))
        rates = maxmin_rates([("a", "a"), ("a", "b")], c)
        assert rates[1] == pytest.approx(10.0)
