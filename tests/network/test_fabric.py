"""NetworkFabric: end-to-end transfer timing with contention."""

import pytest

from repro.common.errors import ConfigurationError
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import Simulation
from repro.simulation.process import Process
from repro.simulation.timeline import Timeline


def make_fabric(sim, *nodes, up=10.0, down=10.0):
    fabric = NetworkFabric(sim)
    for node in nodes:
        fabric.add_node(node, uplink=up, downlink=down)
    return fabric


def test_single_transfer_duration(sim):
    fabric = make_fabric(sim, "a", "b", up=10.0, down=100.0)
    transfer = fabric.start_transfer("a", "b", size=50.0)
    sim.run()
    assert transfer.finished_at == pytest.approx(5.0)  # 50 B at 10 B/s


def test_done_signal_wakes_waiter(sim):
    fabric = make_fabric(sim, "a", "b")
    finished = []

    def waiter():
        transfer = fabric.start_transfer("a", "b", size=20.0)
        result = yield transfer.done
        finished.append((sim.now, result is transfer))

    Process(sim, waiter())
    sim.run()
    assert finished == [(pytest.approx(2.0), True)]


def test_local_transfer_rejected(sim):
    fabric = make_fabric(sim, "a")
    with pytest.raises(ConfigurationError):
        fabric.start_transfer("a", "a", size=1.0)


def test_two_flows_share_uplink_fairly(sim):
    fabric = make_fabric(sim, "a", "b", "c", up=10.0, down=100.0)
    t1 = fabric.start_transfer("a", "b", size=50.0)
    t2 = fabric.start_transfer("a", "c", size=50.0)
    sim.run()
    # Both run at 5 B/s throughout: 10 s each.
    assert t1.finished_at == pytest.approx(10.0)
    assert t2.finished_at == pytest.approx(10.0)


def test_departure_speeds_up_survivor(sim):
    fabric = make_fabric(sim, "a", "b", "c", up=10.0, down=100.0)
    t_short = fabric.start_transfer("a", "b", size=25.0)
    t_long = fabric.start_transfer("a", "c", size=75.0)
    sim.run()
    # Shared 5 B/s until t=5 (short done); survivor then gets 10 B/s for
    # its remaining 50 bytes: 5 + 5 = 10 s.
    assert t_short.finished_at == pytest.approx(5.0)
    assert t_long.finished_at == pytest.approx(10.0)


def test_late_arrival_slows_existing_flow(sim):
    fabric = make_fabric(sim, "a", "b", "c", up=10.0, down=100.0)
    t1 = fabric.start_transfer("a", "b", size=100.0)
    sim.schedule(5.0, fabric.start_transfer, "a", "c", 25.0)
    sim.run()
    # t1: 50 bytes in first 5 s, then shares (5 B/s) for 5 s while the
    # newcomer finishes its 25 B, then full rate for the last 25 B.
    assert t1.finished_at == pytest.approx(5.0 + 5.0 + 2.5)


def test_simultaneous_completions_batch(sim):
    fabric = make_fabric(sim, "a", "b", "c", "d", up=10.0, down=10.0)
    t1 = fabric.start_transfer("a", "b", size=40.0)
    t2 = fabric.start_transfer("c", "d", size=40.0)
    sim.run()
    assert t1.finished_at == pytest.approx(4.0)
    assert t2.finished_at == pytest.approx(4.0)
    assert fabric.active_transfers == 0


def test_cancel_removes_flow_and_frees_bandwidth(sim):
    fabric = make_fabric(sim, "a", "b", "c", up=10.0, down=100.0)
    t1 = fabric.start_transfer("a", "b", size=100.0)
    t2 = fabric.start_transfer("a", "c", size=100.0)
    sim.schedule(2.0, fabric.cancel_transfer, t2)
    sim.run()
    # 2 s at 5 B/s (10 done), then 90 bytes at 10 B/s: finishes at 11 s.
    assert t1.finished_at == pytest.approx(11.0)
    assert t2.finished_at is None


def test_counters_accumulate(sim):
    fabric = make_fabric(sim, "a", "b")
    fabric.start_transfer("a", "b", size=10.0)
    fabric.start_transfer("b", "a", size=10.0)
    sim.run()
    assert fabric.completed_count == 2
    assert fabric.total_bytes_moved == pytest.approx(20.0)


def test_timeline_records_start_and_finish(sim):
    timeline = Timeline(clock=lambda: sim.now)
    fabric = NetworkFabric(sim, timeline=timeline)
    fabric.add_node("a", uplink=10, downlink=10)
    fabric.add_node("b", uplink=10, downlink=10)
    fabric.start_transfer("a", "b", size=10.0)
    sim.run()
    kinds = [r.kind for r in timeline]
    assert kinds == ["transfer.start", "transfer.finish"]


def test_many_to_one_is_downlink_bound(sim):
    fabric = NetworkFabric(sim)
    for i in range(5):
        fabric.add_node(f"s{i}", uplink=100.0, downlink=100.0)
    fabric.add_node("sink", uplink=100.0, downlink=20.0)
    transfers = [fabric.start_transfer(f"s{i}", "sink", size=40.0) for i in range(5)]
    sim.run()
    # Each gets 4 B/s of the 20 B/s downlink: 10 s.
    for t in transfers:
        assert t.finished_at == pytest.approx(10.0)
