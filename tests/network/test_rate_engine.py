"""RateEngine: incremental max-min rates equal the reference, component-wise."""

import pytest

from repro.common.errors import ConfigurationError
from repro.metrics.collector import PerfCounters
from repro.network.bandwidth import LinkCapacities, maxmin_rates
from repro.network.rate_engine import RateEngine


def caps(**nodes):
    c = LinkCapacities()
    for node, (up, down) in nodes.items():
        c.add_node(node, up, down)
    return c


def assert_matches_reference(engine):
    """Engine state must equal a fresh full recompute — exactly."""
    assert engine.rates() == engine.reference_rates()


class TestIncrementalEquality:
    def test_single_flow(self):
        engine = RateEngine(caps(a=(10, 1000), b=(1000, 5)))
        engine.add_flow("f", "a", "b")
        assert engine.rates() == {"f": 5.0}
        assert_matches_reference(engine)

    def test_add_then_remove_restores_rates(self):
        engine = RateEngine(caps(a=(10, 100), b=(100, 100), c=(100, 100)))
        engine.add_flow(1, "a", "b")
        assert engine.rate_of(1) == 10.0
        engine.add_flow(2, "a", "c")
        assert engine.rates() == {1: 5.0, 2: 5.0}
        engine.remove_flow(2)
        assert engine.rates() == {1: 10.0}
        assert_matches_reference(engine)

    def test_batched_changes_one_recompute(self):
        counters = PerfCounters()
        engine = RateEngine(
            caps(a=(10, 10), b=(10, 10), c=(10, 10), d=(10, 10)),
            counters=counters,
        )
        engine.add_flow(1, "a", "b")
        engine.add_flow(2, "c", "d")
        engine.add_flow(3, "a", "d")
        engine.recompute()
        assert counters.recomputes == 1
        assert_matches_reference(engine)

    def test_waterfilling_matches_reference_bitwise(self):
        engine = RateEngine(
            caps(a=(1, 100), b=(2, 100), e=(100, 100), d=(100, 12))
        )
        for fid, src in enumerate(("a", "b", "e")):
            engine.add_flow(fid, src, "d")
        rates = engine.rates()
        assert [rates[0], rates[1], rates[2]] == maxmin_rates(
            [("a", "d"), ("b", "d"), ("e", "d")], engine.capacities
        )


class TestComponentLocality:
    def test_disjoint_component_untouched(self):
        counters = PerfCounters()
        engine = RateEngine(
            caps(a=(10, 10), b=(10, 10), x=(7, 7), y=(7, 7)),
            counters=counters,
        )
        engine.add_flow("left", "a", "b")
        engine.recompute()
        # The x->y arrival shares no link with a->b: only one flow re-rated.
        engine.add_flow("right", "x", "y")
        changed = engine.recompute()
        assert set(changed) == {"right"}
        assert counters.flows_touched == 2  # 1 (first) + 1 (second)
        assert_matches_reference(engine)

    def test_shared_link_component_recomputed_together(self):
        engine = RateEngine(caps(a=(10, 100), b=(100, 100), c=(100, 100)))
        engine.add_flow(1, "a", "b")
        engine.recompute()
        changed = engine.recompute()  # no pending changes
        assert changed == {}
        engine.add_flow(2, "a", "c")  # shares a's uplink with flow 1
        changed = engine.recompute()
        assert set(changed) == {1, 2}

    def test_removal_rerates_former_neighbours(self):
        engine = RateEngine(caps(a=(10, 100), b=(100, 100), c=(100, 100)))
        engine.add_flow(1, "a", "b")
        engine.add_flow(2, "a", "c")
        assert engine.rates() == {1: 5.0, 2: 5.0}
        engine.remove_flow(1)
        changed = engine.recompute()
        assert changed == {2: 10.0}
        assert_matches_reference(engine)

    def test_transitive_component_closure(self):
        # f1 and f3 share no link, but both share one with f2: one component.
        engine = RateEngine(caps(a=(6, 6), b=(6, 6), c=(6, 6), d=(6, 6)))
        engine.add_flow(1, "a", "b")  # up:a, down:b
        engine.add_flow(2, "c", "b")  # shares down:b with f1
        engine.recompute()
        engine.add_flow(3, "c", "d")  # shares up:c with f2 only
        changed = engine.recompute()
        assert set(changed) == {1, 2, 3}
        assert_matches_reference(engine)

    def test_uplink_and_downlink_of_same_node_are_distinct(self):
        # a->b and b->a touch the same *nodes* but no common *link*:
        # up:a/down:b vs up:b/down:a are four different resources.
        engine = RateEngine(caps(a=(6, 6), b=(6, 6)))
        engine.add_flow(1, "a", "b")
        engine.recompute()
        engine.add_flow(2, "b", "a")
        assert set(engine.recompute()) == {2}
        assert_matches_reference(engine)


class TestLoopback:
    def test_loopback_rate_is_infinite(self):
        engine = RateEngine(caps(a=(1, 1)))
        engine.add_flow("loop", "a", "a")
        assert engine.recompute() == {"loop": float("inf")}
        assert engine.rate_of("loop") == float("inf")

    def test_loopback_consumes_no_capacity(self):
        engine = RateEngine(caps(a=(10, 100), b=(100, 100)))
        engine.add_flow("loop", "a", "a")
        engine.add_flow("real", "a", "b")
        rates = engine.rates()
        assert rates["real"] == pytest.approx(10.0)
        assert_matches_reference(engine)

    def test_loopback_removal_is_silent(self):
        counters = PerfCounters()
        engine = RateEngine(caps(a=(1, 1)), counters=counters)
        engine.add_flow("loop", "a", "a")
        engine.recompute()
        engine.remove_flow("loop")
        assert engine.recompute() == {}
        assert counters.recomputes == 0  # loopbacks never trigger water-filling
        assert engine.rates() == {}


class TestErrors:
    def test_unregistered_source_rejected(self):
        engine = RateEngine(caps(a=(1, 1)))
        with pytest.raises(ConfigurationError):
            engine.add_flow(1, "zzz", "a")

    def test_unregistered_destination_rejected(self):
        engine = RateEngine(caps(a=(1, 1)))
        with pytest.raises(ConfigurationError):
            engine.add_flow(1, "a", "zzz")

    def test_unregistered_loopback_rejected(self):
        engine = RateEngine(caps(a=(1, 1)))
        with pytest.raises(ConfigurationError):
            engine.add_flow(1, "zzz", "zzz")

    def test_duplicate_flow_id_rejected(self):
        engine = RateEngine(caps(a=(1, 1), b=(1, 1)))
        engine.add_flow(1, "a", "b")
        with pytest.raises(ConfigurationError):
            engine.add_flow(1, "b", "a")

    def test_remove_unknown_flow_rejected(self):
        engine = RateEngine(caps(a=(1, 1)))
        with pytest.raises(ConfigurationError):
            engine.remove_flow("ghost")


class TestBookkeeping:
    def test_dirty_flag_lifecycle(self):
        engine = RateEngine(caps(a=(1, 1), b=(1, 1)))
        assert not engine.dirty
        engine.add_flow(1, "a", "b")
        assert engine.dirty
        engine.recompute()
        assert not engine.dirty
        engine.remove_flow(1)
        assert engine.dirty

    def test_len_and_contains(self):
        engine = RateEngine(caps(a=(1, 1), b=(1, 1)))
        engine.add_flow("x", "a", "b")
        assert len(engine) == 1 and "x" in engine and "y" not in engine
        engine.remove_flow("x")
        assert len(engine) == 0 and "x" not in engine

    def test_empty_link_left_behind_by_removal_is_pruned(self):
        engine = RateEngine(caps(a=(1, 1), b=(1, 1)))
        engine.add_flow(1, "a", "b")
        engine.recompute()
        engine.remove_flow(1)
        engine.recompute()
        assert engine._link_flows == {}
