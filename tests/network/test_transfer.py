"""Transfer progress accounting under varying rates."""

import pytest

from repro.network.transfer import Transfer
from repro.simulation.engine import Simulation


@pytest.fixture
def transfer(sim):
    return Transfer(sim, "x-0", "a", "b", size=100.0)


def test_initial_state(sim, transfer):
    assert transfer.remaining(sim.now) == 100.0
    assert transfer.rate == 0.0
    assert transfer.finished_at is None
    assert transfer.duration is None


def test_zero_size_rejected(sim):
    with pytest.raises(ValueError):
        Transfer(sim, "x", "a", "b", size=0)


def test_progress_at_constant_rate(sim, transfer):
    transfer.set_rate(0.0, 10.0)
    assert transfer.remaining(3.0) == pytest.approx(70.0)
    assert transfer.eta(3.0) == pytest.approx(7.0)


def test_rate_change_folds_progress(sim, transfer):
    transfer.set_rate(0.0, 10.0)
    transfer.set_rate(5.0, 25.0)  # 50 bytes done, 50 left at 25 B/s
    assert transfer.remaining(5.0) == pytest.approx(50.0)
    assert transfer.eta(5.0) == pytest.approx(2.0)


def test_eta_infinite_at_zero_rate(sim, transfer):
    assert transfer.eta(0.0) == float("inf")


def test_infinite_rate_finishes_instantly(sim, transfer):
    # Loopback contract: the allocator hands node-local transfers an
    # infinite rate, and eta must collapse to 0 in the same instant
    # (rem/inf == 0) — never nan from the inf*0 progress product.
    transfer.set_rate(0.0, float("inf"))
    assert transfer.eta(0.0) == 0.0
    assert transfer.remaining(1e-12) == 0.0


def test_infinite_rate_after_partial_progress(sim, transfer):
    transfer.set_rate(0.0, 10.0)
    transfer.set_rate(5.0, float("inf"))  # 50 bytes left, rate -> inf
    assert transfer.eta(5.0) == 0.0
    assert transfer.remaining(5.0) == pytest.approx(50.0)  # instant snapshot
    assert transfer.remaining(5.0 + 1e-12) == 0.0


def test_remaining_never_negative(sim, transfer):
    transfer.set_rate(0.0, 10.0)
    assert transfer.remaining(1000.0) == 0.0
    assert transfer.eta(1000.0) == 0.0


def test_settle_is_idempotent(sim, transfer):
    transfer.set_rate(0.0, 10.0)
    transfer.settle(4.0)
    transfer.settle(4.0)
    assert transfer.remaining(4.0) == pytest.approx(60.0)


def test_duration_after_finish(sim, transfer):
    transfer.finished_at = 12.5
    assert transfer.duration == pytest.approx(12.5 - transfer.started_at)


def test_started_at_stamped_from_clock():
    sim = Simulation()
    sim.schedule(3.0, lambda: None)
    sim.run()
    t = Transfer(sim, "x", "a", "b", size=1.0)
    assert t.started_at == 3.0
