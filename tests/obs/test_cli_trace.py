"""The ``trace`` subcommand and the --trace/--json flags on run/compare."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.events import LAYERS
from repro.obs.export import validate_chrome_trace

pytestmark = pytest.mark.obs

FAST = ["--nodes", "10", "--apps", "2", "--jobs-per-app", "2", "--seed", "1"]


class TestParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.manager == "custody"
        assert args.out == "run.trace.json"
        assert args.faults == 0
        assert not args.smoke

    def test_json_flag_defaults_to_stdout(self):
        args = build_parser().parse_args(["run", "--json"])
        assert args.json_out == "-"
        args = build_parser().parse_args(["run", "--json", "out.json"])
        assert args.json_out == "out.json"


class TestTraceCommand:
    def test_smoke_gate_passes_and_validates(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        assert main(["trace", "--smoke", "--seed", "7", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) == []
        cats = {e.get("cat") for e in data["traceEvents"] if e["ph"] != "M"}
        assert set(LAYERS) <= cats
        assert "trace smoke passed" in capsys.readouterr().out

    def test_fault_free_trace_with_summary_and_jsonl(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        assert main(["trace", *FAST, "--out", str(out),
                     "--jsonl", str(jsonl), "--summary"]) == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        lines = [json.loads(x) for x in jsonl.read_text().splitlines()]
        assert lines and all("ts" in r and "name" in r for r in lines)
        assert "task-time breakdown" in capsys.readouterr().out


class TestRunFlags:
    def test_run_trace_export(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        assert main(["run", *FAST, "--trace", str(out)]) == 0
        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) == []
        assert data["otherData"]["manager"] == "custody"

    def test_run_json_to_stdout(self, capsys):
        assert main(["run", *FAST, "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["config"]["manager"] == "custody"
        assert payload["metrics"]["finished_jobs"] > 0

    def test_run_json_to_file_includes_perf(self, tmp_path, capsys):
        path = tmp_path / "result.json"
        assert main(["run", *FAST, "--perf", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert "recomputes" in payload["perf"]
        assert "links_touched" in payload["perf"]

    def test_compare_json_has_one_payload_per_manager(self, tmp_path, capsys):
        path = tmp_path / "cmp.json"
        assert main(["compare", *FAST, "--managers", "standalone,custody",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"standalone", "custody"}
        for result in payload.values():
            assert "metrics" in result and "config" in result

    def test_compare_trace_writes_per_manager_files(self, tmp_path, capsys):
        out = tmp_path / "cmp.trace.json"
        assert main(["compare", *FAST, "--managers", "standalone,custody",
                     "--trace", str(out)]) == 0
        for manager in ("standalone", "custody"):
            path = tmp_path / f"cmp.trace.{manager}.json"
            assert path.exists()
            assert validate_chrome_trace(json.loads(path.read_text())) == []
