"""Chrome trace_event export and the structural schema validator."""

import json

import pytest

from repro.obs.events import (
    DRIVER,
    MANAGER,
    NETWORK,
    CounterEvent,
    SpanEvent,
    TraceEvent,
)
from repro.obs.export import chrome_trace, validate_chrome_trace, write_chrome_trace

pytestmark = pytest.mark.obs


def sample_events():
    return [
        SpanEvent(1.0, "task.attempt", DRIVER, "node-1", "exec-1",
                  {"outcome": "success"}, dur=2.5),
        TraceEvent(2.0, "executor.grant", MANAGER, "master", "",
                   {"app": "a-0"}),
        CounterEvent(5.0, "net.throughput", NETWORK, "fabric", value=3.5),
    ]


class TestChromeTrace:
    def test_span_maps_to_complete_event_in_microseconds(self):
        data = chrome_trace(sample_events())
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        (span,) = spans
        assert span["ts"] == pytest.approx(1.0e6)
        assert span["dur"] == pytest.approx(2.5e6)
        assert span["args"] == {"outcome": "success"}

    def test_instant_gets_thread_scope(self):
        data = chrome_trace(sample_events())
        (inst,) = [e for e in data["traceEvents"] if e["ph"] == "i"]
        assert inst["s"] == "t"
        assert inst["args"] == {"app": "a-0"}

    def test_counter_carries_value_arg(self):
        data = chrome_trace(sample_events())
        (ctr,) = [e for e in data["traceEvents"] if e["ph"] == "C"]
        assert ctr["args"] == {"value": 3.5}

    def test_tracks_become_named_processes(self):
        data = chrome_trace(sample_events())
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        assert {"node-1", "master", "fabric"} <= process_names
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert "exec-1" in thread_names

    def test_pid_tid_assignment_is_deterministic(self):
        a = chrome_trace(sample_events())
        b = chrome_trace(sample_events())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_other_data_passthrough(self):
        data = chrome_trace([], other_data={"manager": "custody", "seed": 7})
        assert data["otherData"] == {"manager": "custody", "seed": 7}
        assert data["displayTimeUnit"] == "ms"

    def test_write_round_trip(self, tmp_path):
        path = write_chrome_trace(sample_events(), tmp_path / "run.trace.json")
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []


class TestValidator:
    def test_valid_export_passes(self):
        assert validate_chrome_trace(chrome_trace(sample_events())) == []

    def test_top_level_must_be_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_bad_phase_flagged(self):
        data = chrome_trace(sample_events())
        data["traceEvents"][-1]["ph"] = "Q"
        assert any("bad phase" in p for p in validate_chrome_trace(data))

    def test_missing_name_flagged(self):
        data = chrome_trace(sample_events())
        data["traceEvents"][-1]["name"] = ""
        assert any("name" in p for p in validate_chrome_trace(data))

    def test_unknown_category_flagged(self):
        data = chrome_trace([TraceEvent(1.0, "x", cat=DRIVER)])
        for ev in data["traceEvents"]:
            if ev["ph"] != "M":
                ev["cat"] = "mystery"
        assert any("cat" in p for p in validate_chrome_trace(data))

    def test_negative_duration_flagged(self):
        data = chrome_trace(sample_events())
        for ev in data["traceEvents"]:
            if ev["ph"] == "X":
                ev["dur"] = -1.0
        assert any("dur" in p for p in validate_chrome_trace(data))

    def test_missing_trace_events_flagged(self):
        assert validate_chrome_trace({"displayTimeUnit": "ms"}) != []
