"""Prometheus exposition: render, parse back, snapshot file round-trips."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.exposition import (
    load_snapshot,
    parse_prometheus,
    to_prometheus,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry

pytestmark = [pytest.mark.obs, pytest.mark.metrics]


@pytest.fixture
def registry():
    reg = MetricsRegistry(clock=lambda: 100.0)
    jobs = reg.counter("jobs_total", "Jobs seen.", ("app",))
    jobs.labels(app="app-00").inc(3)
    jobs.labels(app="app-01").inc(5)
    reg.gauge("queue_depth", "Runnable tasks.").set(7)
    jct = reg.histogram("jct_seconds", "Job completion time.", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 2.0, 2.5, 50.0, 500.0):
        jct.observe(v)
    return reg


def test_exposition_text_structure(registry):
    text = to_prometheus(registry)
    assert "# HELP jobs_total Jobs seen." in text
    assert "# TYPE jobs_total counter" in text
    assert 'jobs_total{app="app-00"} 3' in text
    assert "# TYPE jct_seconds histogram" in text
    assert 'jct_seconds_bucket{le="+Inf"} 5' in text
    assert "jct_seconds_count 5" in text


def test_histogram_buckets_are_cumulative(registry):
    text = to_prometheus(registry)
    values = {}
    for line in text.splitlines():
        if line.startswith("jct_seconds_bucket"):
            le = line.split('le="')[1].split('"')[0]
            values[le] = float(line.rsplit(" ", 1)[1])
    assert values["1"] == 1  # 0.5
    assert values["10"] == 3  # + 2.0, 2.5
    assert values["100"] == 4  # + 50.0
    assert values["+Inf"] == 5  # + 500.0 (overflow)


def test_round_trip_through_parser(registry):
    snap = registry.snapshot()
    parsed = parse_prometheus(to_prometheus(snap))
    assert set(parsed) == {m["name"] for m in snap["metrics"]}
    jobs = parsed["jobs_total"]
    assert jobs["type"] == "counter"
    by_app = {
        labels["app"]: value
        for name, labels, value in jobs["samples"]
    }
    assert by_app == {"app-00": 3.0, "app-01": 5.0}
    jct = parsed["jct_seconds"]
    count = [v for n, labels, v in jct["samples"] if n == "jct_seconds_count"]
    assert count == [5.0]


def test_label_values_escape_and_round_trip():
    reg = MetricsRegistry()
    reg.counter("weird_total", "", ("path",)).labels(path='a"b\\c\nd').inc()
    parsed = parse_prometheus(to_prometheus(reg))
    ((_, labels, value),) = parsed["weird_total"]["samples"]
    assert labels["path"] == 'a"b\\c\nd'
    assert value == 1.0


def test_parser_rejects_malformed_lines():
    with pytest.raises(ConfigurationError):
        parse_prometheus("this is not a metric line at all{")
    with pytest.raises(ConfigurationError):
        parse_prometheus('x_total{app="a"} not-a-number')


def test_parser_ignores_comments_and_blank_lines():
    text = (
        "\n# freeform comment\n"
        "# HELP x_total Things.\n"
        "# TYPE x_total counter\n"
        "\n# another comment\n"
        "x_total 4\n\n"
    )
    parsed = parse_prometheus(text)
    assert parsed["x_total"]["samples"] == [("x_total", {}, 4.0)]


def test_snapshot_file_round_trip(registry, tmp_path):
    snap = registry.snapshot(meta={"seed": 3})
    path = write_snapshot(snap, tmp_path / "run.metrics.json")
    loaded = load_snapshot(path)
    assert loaded == snap


def test_load_snapshot_rejects_wrong_kind(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text('{"kind": "something_else"}')
    with pytest.raises(ConfigurationError, match="not a metrics snapshot"):
        load_snapshot(path)


def test_load_snapshot_rejects_unreadable(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError, match="cannot read"):
        load_snapshot(path)
