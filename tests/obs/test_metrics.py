"""MetricsRegistry unit tests: instruments, families, snapshots, null path."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
    SNAPSHOT_FORMAT_VERSION,
)

pytestmark = [pytest.mark.obs, pytest.mark.metrics]


# ------------------------------------------------------------- instruments
def test_counter_accumulates_and_rejects_negative():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ConfigurationError, match="only go up"):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge()
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13.0


# -------------------------------------------------------------- histograms
def test_empty_histogram_quantiles_are_none():
    h = Histogram((1.0, 10.0))
    assert h.quantile(0.5) is None
    assert h.quantiles((0.5, 0.99)) == [None, None]
    assert h.mean is None
    assert h.fraction_leq(5.0) == 0.0
    d = h.as_dict()
    assert d["count"] == 0 and d["min"] is None and d["max"] is None
    assert d["p50"] is None and d["p99"] is None


def test_single_observation_pins_every_quantile():
    h = Histogram((1.0, 10.0, 100.0))
    h.observe(7.0)
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert h.quantile(q) == 7.0
    assert h.mean == 7.0
    assert h.fraction_leq(7.0) == 1.0
    assert h.fraction_leq(6.9) == 0.0


def test_overflow_observations_clamp_to_last_bucket():
    h = Histogram((1.0, 10.0))
    h.observe(5000.0)
    h.observe(9000.0)
    assert h.counts == [0, 0, 2]  # both in the implicit overflow bucket
    assert h.count == 2
    # Quantiles stay within the observed range despite the open-ended bucket.
    assert 5000.0 <= h.quantile(0.5) <= 9000.0
    assert h.quantile(1.0) == 9000.0


def test_bucket_edges_are_inclusive_upper():
    h = Histogram((1.0, 10.0))
    h.observe(1.0)   # lands in bucket 0 (le=1)
    h.observe(1.001)  # lands in bucket 1 (le=10)
    assert h.counts == [1, 1, 0]


def test_nan_observation_raises():
    h = Histogram((1.0,))
    with pytest.raises(ConfigurationError, match="NaN"):
        h.observe(float("nan"))


def test_quantile_arg_validated():
    h = Histogram((1.0,))
    h.observe(0.5)
    with pytest.raises(ConfigurationError):
        h.quantile(1.5)


def test_histogram_bounds_validated():
    with pytest.raises(ConfigurationError):
        Histogram(())
    with pytest.raises(ConfigurationError):
        Histogram((1.0, 1.0))
    with pytest.raises(ConfigurationError):
        Histogram((5.0, 1.0))


def test_merge_requires_identical_buckets():
    a, b = Histogram((1.0, 2.0)), Histogram((1.0, 3.0))
    with pytest.raises(ConfigurationError, match="different buckets"):
        a.merge(b)


def test_histogram_dict_round_trip():
    h = Histogram((1.0, 10.0, 100.0))
    for v in (0.2, 3.0, 42.0, 999.0):
        h.observe(v)
    back = Histogram.from_dict(h.as_dict())
    assert back.counts == h.counts
    assert back.sum == h.sum and back.count == h.count
    assert back.min == h.min and back.max == h.max
    assert back.quantile(0.9) == h.quantile(0.9)


# ---------------------------------------------------------------- families
def test_labels_return_the_same_child_per_value_tuple():
    reg = MetricsRegistry()
    fam = reg.counter("x_total", "help", ("app",))
    a = fam.labels(app="a")
    a2 = fam.labels(app="a")
    b = fam.labels(app="b")
    assert a is a2 and a is not b
    a.inc()
    assert a.value == 1.0 and b.value == 0.0


def test_mismatched_labels_raise():
    reg = MetricsRegistry()
    fam = reg.counter("x_total", "", ("app",))
    with pytest.raises(ConfigurationError):
        fam.labels(node="n1")
    with pytest.raises(ConfigurationError):
        fam.labels()


def test_label_free_family_delegates_directly():
    reg = MetricsRegistry()
    reg.counter("c_total").inc(2)
    reg.gauge("g").set(7)
    reg.histogram("h", buckets=(1.0, 10.0)).observe(3.0)
    snap = reg.snapshot()
    by_name = {m["name"]: m for m in snap["metrics"]}
    assert by_name["c_total"]["series"][0]["value"] == 2.0
    assert by_name["g"]["series"][0]["value"] == 7.0
    assert by_name["h"]["series"][0]["count"] == 1


def test_labelled_family_rejects_direct_use():
    reg = MetricsRegistry()
    fam = reg.counter("x_total", "", ("app",))
    with pytest.raises(ConfigurationError, match="use .labels"):
        fam.inc()


# ---------------------------------------------------------------- registry
def test_reregistration_is_idempotent_when_identical():
    reg = MetricsRegistry()
    first = reg.counter("x_total", "help", ("app",))
    again = reg.counter("x_total", "help", ("app",))
    assert first is again
    assert len(reg) == 1


def test_conflicting_redeclaration_raises():
    reg = MetricsRegistry()
    reg.counter("x_total", "", ("app",))
    with pytest.raises(ConfigurationError, match="conflicting"):
        reg.gauge("x_total", "", ("app",))
    with pytest.raises(ConfigurationError, match="conflicting"):
        reg.counter("x_total", "", ("node",))
    reg.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ConfigurationError, match="conflicting"):
        reg.histogram("h", buckets=(1.0, 3.0))


def test_snapshot_schema_and_clock():
    reg = MetricsRegistry(clock=lambda: 42.0)
    reg.counter("jobs_total", "Jobs.").inc()
    snap = reg.snapshot(meta={"seed": 7})
    assert snap["format_version"] == SNAPSHOT_FORMAT_VERSION
    assert snap["kind"] == "metrics_snapshot"
    assert snap["sim_time"] == 42.0
    assert snap["wall_time"] > 0
    assert snap["meta"] == {"seed": 7}
    (fam,) = snap["metrics"]
    assert fam["name"] == "jobs_total" and fam["type"] == "counter"


def test_snapshot_orders_families_and_series_deterministically():
    reg = MetricsRegistry()
    fam = reg.counter("b_total", "", ("app",))
    fam.labels(app="z").inc()
    fam.labels(app="a").inc()
    reg.counter("a_total").inc()
    snap = reg.snapshot()
    assert [m["name"] for m in snap["metrics"]] == ["a_total", "b_total"]
    assert [s["labels"]["app"] for s in snap["metrics"][1]["series"]] == ["a", "z"]


# -------------------------------------------------------------- null path
def test_null_registry_is_inert_and_shared():
    c = NULL_METRICS.counter("anything", "", ("a", "b"))
    g = NULL_METRICS.gauge("else")
    h = NULL_METRICS.histogram("hist", buckets=(1.0,))
    assert isinstance(c, NullInstrument)
    assert c is g is h  # one shared instrument for every factory
    assert c.labels(a=1, b=2) is c  # labels() chains to itself
    # All mutators are no-ops with no state.
    c.inc()
    c.dec()
    c.set(5)
    c.observe(1.0)
    assert not NULL_METRICS.enabled


def test_null_registry_snapshot_raises():
    with pytest.raises(ConfigurationError, match="no data to snapshot"):
        NULL_METRICS.snapshot()


def test_default_buckets_strictly_increase():
    assert all(
        b2 > b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
    )
