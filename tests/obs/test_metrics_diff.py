"""Snapshot diffing: flattening, symmetric deltas, tolerance overrides."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.diff import diff_snapshots, flatten_snapshot, render_scoreboard
from repro.obs.metrics import MetricsRegistry

pytestmark = [pytest.mark.obs, pytest.mark.metrics]


def make_snapshot(jobs=10, jct_values=(1.0, 5.0, 20.0), queue=3.0):
    reg = MetricsRegistry(clock=lambda: 50.0)
    fam = reg.counter("jobs_total", "Jobs.", ("app",))
    fam.labels(app="a").inc(jobs)
    reg.gauge("queue_depth", "Depth.").set(queue)
    h = reg.histogram("jct_seconds", "JCT.", buckets=(1.0, 10.0, 100.0))
    for v in jct_values:
        h.observe(v)
    return reg.snapshot(meta={"seed": 0})


def test_flatten_projects_scalars_and_histogram_facets():
    flat = flatten_snapshot(make_snapshot())
    assert flat["jobs_total{app=a}"] == 10.0
    assert flat["queue_depth"] == 3.0
    assert flat["jct_seconds:count"] == 3.0
    assert flat["jct_seconds:sum"] == 26.0
    assert "jct_seconds:p99" in flat


def test_flatten_drops_empty_histogram_quantiles():
    reg = MetricsRegistry()
    reg.histogram("empty", buckets=(1.0,))
    reg.histogram("empty", buckets=(1.0,)).labels()  # materialise the series
    flat = flatten_snapshot(reg.snapshot())
    assert flat.get("empty:count") == 0.0
    assert "empty:p50" not in flat and "empty:mean" not in flat


def test_identical_snapshots_pass():
    report = diff_snapshots(make_snapshot(), make_snapshot())
    assert report.passed
    assert not report.drifted
    assert "within tolerance" in report.describe()


def test_drift_detected_and_order_independent():
    a, b = make_snapshot(jobs=10), make_snapshot(jobs=20)
    fwd = diff_snapshots(a, b)
    rev = diff_snapshots(b, a)
    assert not fwd.passed and not rev.passed
    assert {e.key for e in fwd.drifted} == {e.key for e in rev.drifted}
    (entry,) = [e for e in fwd.drifted if e.key == "jobs_total{app=a}"]
    assert entry.rel_delta == pytest.approx(0.5)  # |10-20|/max(10,20)


def test_small_drift_within_default_tolerance():
    report = diff_snapshots(make_snapshot(queue=100.0), make_snapshot(queue=102.0))
    assert report.passed  # 2% < 5% default


def test_tolerance_overrides_longest_prefix_wins():
    a, b = make_snapshot(jobs=10), make_snapshot(jobs=16)
    assert not diff_snapshots(a, b).passed
    loose = diff_snapshots(a, b, overrides={"jobs_total": 0.5})
    assert loose.passed
    # A longer, more specific prefix beats the shorter one.
    mixed = diff_snapshots(
        a, b, overrides={"jobs_": 0.5, "jobs_total{app=a}": 0.01}
    )
    assert not mixed.passed


def test_missing_key_is_drift_unless_opted_out():
    a = make_snapshot()
    b = make_snapshot()
    b["metrics"] = [m for m in b["metrics"] if m["name"] != "queue_depth"]
    report = diff_snapshots(a, b)
    (entry,) = [e for e in report.drifted if e.key == "queue_depth"]
    assert entry.b is None
    assert not report.passed
    # tolerance >= 1.0 opts a family out of presence checking.
    assert diff_snapshots(a, b, overrides={"queue_depth": 1.0}).passed


def test_zero_baseline_is_safe():
    report = diff_snapshots(make_snapshot(queue=0.0), make_snapshot(queue=0.0))
    assert report.passed
    report = diff_snapshots(make_snapshot(queue=0.0), make_snapshot(queue=5.0))
    (entry,) = [e for e in report.drifted if e.key == "queue_depth"]
    assert entry.rel_delta == 1.0


def test_negative_tolerance_rejected():
    with pytest.raises(ConfigurationError):
        diff_snapshots(make_snapshot(), make_snapshot(), tolerance=-0.1)


def test_scoreboard_renders_all_families():
    text = render_scoreboard(make_snapshot())
    assert "run scoreboard" in text and "sim_time=50" in text
    assert "jobs_total (counter)" in text
    assert "jct_seconds (histogram)" in text
    assert "n=3" in text
