"""Metrics must observe, never perturb: metrics-on == metrics-off.

The core acceptance property of the metrics registry — running the
identical experiment with the registry attached produces the exact same
:class:`ExperimentMetrics`, allocation rounds and virtual end time as
running it dark, under both network engines and both allocation engines.
Unlike tracing (whose sampler may add trailing grid ticks), enabling
metrics alone must not move the clock at all.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.chaos import build_chaos_plan

pytestmark = [pytest.mark.obs, pytest.mark.metrics]


@st.composite
def small_configs(draw):
    return ExperimentConfig(
        manager=draw(st.sampled_from(["custody", "standalone", "yarn", "mesos"])),
        workload=draw(st.sampled_from(["wordcount", "sort"])),
        num_nodes=draw(st.integers(min_value=8, max_value=12)),
        num_apps=2,
        jobs_per_app=draw(st.integers(min_value=1, max_value=2)),
        seed=draw(st.integers(min_value=0, max_value=50)),
        network_engine=draw(st.sampled_from(["incremental", "reference"])),
        alloc_engine=draw(st.sampled_from(["incremental", "reference"])),
    )


def assert_lockstep(config, **run_kwargs):
    dark = run_experiment(replace(config, metrics=False), **run_kwargs)
    lit = run_experiment(replace(config, metrics=True), **run_kwargs)
    assert lit.metrics == dark.metrics
    assert lit.sim_time == dark.sim_time
    assert lit.allocation_rounds == dark.allocation_rounds
    assert lit.speculative_launches == dark.speculative_launches
    assert lit.faults == dark.faults
    assert dark.registry is None and lit.registry is not None
    return lit


@given(small_configs())
@settings(max_examples=8, deadline=None)
def test_metrics_change_no_trajectory(config):
    assert_lockstep(config)


def test_metrics_lockstep_under_both_engine_variants_with_faults():
    """One fixed chaos run per engine variant pair, metrics on == off."""
    base = ExperimentConfig(
        manager="custody", workload="wordcount", num_nodes=12,
        num_apps=2, jobs_per_app=2, seed=5, detector_timeout=10.0,
    )
    rng_seed = [base.seed, 7919, 1]
    for net, alloc in (
        ("incremental", "incremental"),
        ("reference", "reference"),
    ):
        config = replace(base, network_engine=net, alloc_engine=alloc)
        plan = build_chaos_plan(
            config.num_nodes, config.executors_per_node,
            np.random.default_rng(rng_seed),
            node_failures=1, partitions=1, degradations=1,
            executor_failures=1, slowdowns=1, horizon=40.0,
        )
        lit = assert_lockstep(config, fault_plan=plan)
        snap = lit.registry.snapshot()
        names = {m["name"] for m in snap["metrics"]}
        assert "faults_injected_total" in names
        assert "detector_reports_total" in names or "suspicion_changes_total" in names


def test_registry_counts_agree_with_legacy_tallies():
    """The new instruments and the pre-existing counters tell one story."""
    config = ExperimentConfig(
        manager="custody", workload="wordcount", num_nodes=10,
        num_apps=2, jobs_per_app=2, seed=3, metrics=True,
    )
    result = run_experiment(config)
    reg = result.registry
    assert reg is not None

    def total(name):
        fam = reg.get(name)
        assert fam is not None, name
        return sum(s.get("value", s.get("count", 0)) for s in fam.series())

    finished = result.metrics.finished_jobs
    assert total("job_completions_total") == finished
    assert total("job_arrivals_total") == config.num_apps * config.jobs_per_app
    jct = reg.get("job_completion_seconds")
    assert sum(s["count"] for s in jct.series()) == finished
    assert total("alloc_rounds_total") == result.allocation_rounds
    assert total("run_jobs_finished") == finished


def test_metrics_off_run_has_no_registry():
    result = run_experiment(
        ExperimentConfig(manager="custody", num_nodes=8, num_apps=2,
                         jobs_per_app=1, seed=1)
    )
    assert result.registry is None
