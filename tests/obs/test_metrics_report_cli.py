"""CLI: ``repro run --metrics`` and the ``repro report`` subcommand."""

import json

import pytest

from repro.cli import main

pytestmark = [pytest.mark.obs, pytest.mark.metrics]

RUN_ARGS = ["run", "--nodes", "10", "--apps", "2", "--jobs-per-app", "1"]


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("metrics") / "a.metrics.json"
    assert main(RUN_ARGS + ["--metrics", str(path)]) == 0
    return path


def test_run_writes_a_valid_snapshot(snapshot_path):
    data = json.loads(snapshot_path.read_text())
    assert data["kind"] == "metrics_snapshot"
    assert data["format_version"] == 1
    assert data["meta"]["manager"] == "custody"
    names = {m["name"] for m in data["metrics"]}
    assert {"job_arrivals_total", "alloc_rounds_total",
            "run_jobs_finished"} <= names


def test_report_renders_scoreboard(snapshot_path, capsys):
    assert main(["report", str(snapshot_path)]) == 0
    out = capsys.readouterr().out
    assert "run scoreboard" in out
    assert "job_completion_seconds" in out
    assert "SLOs:" in out


def test_report_writes_prometheus_exposition(snapshot_path, tmp_path, capsys):
    prom = tmp_path / "run.prom"
    assert main(["report", str(snapshot_path), "--prom", str(prom)]) == 0
    text = prom.read_text()
    assert "# TYPE job_completion_seconds histogram" in text
    assert 'le="+Inf"' in text


def test_diff_identical_snapshots_exits_zero(snapshot_path, tmp_path, capsys):
    twin = tmp_path / "b.metrics.json"
    assert main(RUN_ARGS + ["--metrics", str(twin)]) == 0
    assert main(["report", "--diff", str(snapshot_path), str(twin)]) == 0
    assert "within tolerance" in capsys.readouterr().out


def test_diff_drifted_snapshots_exit_nonzero(snapshot_path, tmp_path, capsys):
    other = tmp_path / "c.metrics.json"
    bigger = ["run", "--nodes", "10", "--apps", "2", "--jobs-per-app", "3",
              "--metrics", str(other)]
    assert main(bigger) == 0
    assert main(["report", "--diff", str(snapshot_path), str(other)]) == 1
    assert "OUT OF TOLERANCE" in capsys.readouterr().out
    # A blanket >=1.0 tolerance waves everything (including one-sided keys).
    assert main(["report", "--diff", str(snapshot_path), str(other),
                 "--tolerance", "1.0"]) == 0


def test_diff_tol_override_rescues_a_noisy_family(snapshot_path, tmp_path, capsys):
    other = tmp_path / "d.metrics.json"
    assert main(["run", "--nodes", "10", "--apps", "2", "--jobs-per-app", "3",
                 "--metrics", str(other)]) == 0
    base = main(["report", "--diff", str(snapshot_path), str(other)])
    assert base == 1
    out = capsys.readouterr().out
    drifted_keys = [line for line in out.splitlines() if "DRIFT" in line]
    assert drifted_keys
    # Loosening every drifted family by prefix flips the verdict.
    prefixes = sorted({
        line.split("] ", 1)[1].split(":")[0].split("{")[0]
        for line in drifted_keys
    })
    args = ["report", "--diff", str(snapshot_path), str(other)]
    for p in prefixes:
        args += ["--tol", f"{p}=1.0"]
    assert main(args) == 0


def test_diff_bad_tol_syntax_exits_two(snapshot_path, capsys):
    code = main(["report", "--diff", str(snapshot_path), str(snapshot_path),
                 "--tol", "nonsense"])
    assert code == 2
    assert "PREFIX=TOLERANCE" in capsys.readouterr().err


def test_report_without_input_exits_two(capsys):
    assert main(["report"]) == 2
    assert "snapshot path" in capsys.readouterr().err


def test_report_with_custom_slo_file(snapshot_path, tmp_path, capsys):
    slos = tmp_path / "slos.json"
    slos.write_text(json.dumps({"slos": [
        {"name": "impossible", "metric": "run_jobs_finished",
         "op": "<=", "threshold": -1},
    ]}))
    # Rendering a report with failing SLOs is not an error outside --smoke.
    assert main(["report", str(snapshot_path), "--slo", str(slos)]) == 0
    out = capsys.readouterr().out
    assert "[FAIL] impossible" in out


@pytest.mark.slow
def test_report_smoke_gate_passes(tmp_path, capsys):
    out_path = tmp_path / "smoke.metrics.json"
    assert main(["report", "--smoke", "--out", str(out_path)]) == 0
    assert "metrics smoke passed" in capsys.readouterr().out
    data = json.loads(out_path.read_text())
    names = {m["name"] for m in data["metrics"]}
    assert "faults_injected_total" in names
    assert data["meta"]["smoke"] is True
