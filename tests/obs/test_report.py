"""trace_summary text report over a small synthetic event stream."""

import pytest

from repro.obs.events import (
    AllocationRound,
    ExecutorGrant,
    FaultInjected,
    JobSpan,
    TaskAttempt,
    TransferSpan,
)
from repro.obs.report import trace_summary

pytestmark = pytest.mark.obs


def sample_stream():
    return [
        AllocationRound(0.0, track="master", attrs={"round": 0}),
        ExecutorGrant(0.1, track="master",
                      attrs={"app": "a-0", "executor": "e1", "node": "n1"}),
        ExecutorGrant(0.2, track="master",
                      attrs={"app": "a-0", "executor": "e2", "node": "n2",
                             "ok": False}),
        TaskAttempt(1.0, track="n1", lane="e1", dur=4.0,
                    attrs={"task": "t1", "app": "a-0", "outcome": "success",
                           "queue": 1.0, "input": 2.0, "run": 2.0,
                           "locality": "node"}),
        TaskAttempt(1.0, track="n2", lane="e2", dur=1.0,
                    attrs={"task": "t2", "app": "a-0", "outcome": "killed"}),
        TransferSpan(2.0, track="n1", dur=1.0,
                     attrs={"src": "n1", "dst": "n2", "size": 2e9,
                            "outcome": "ok"}),
        FaultInjected(3.0, track="n2", attrs={"kind": "node", "target": "n2"}),
        JobSpan(0.0, track="a-0", lane="j1", dur=6.0,
                attrs={"job": "j1", "app": "a-0", "local_job": True}),
    ]


def test_summary_mentions_every_section():
    text = trace_summary(sample_stream())
    assert "8 events" in text
    assert "window: t=0.000s → t=3.000s" in text
    assert "attempts: 2 traced, 1 not successful" in text
    assert "executor grants: 2 (1 on dead nodes)" in text
    assert "1 transfers (0 failed), 2.00 GB moved" in text
    assert "fault.injected: 1" in text
    assert "task-time breakdown (1 successful attempts)" in text
    assert "locality (1 input attempts): node: 100.0%" in text
    assert "j1" in text and "slowest jobs" in text


def test_phase_shares_sum_to_hundred():
    text = trace_summary(sample_stream())
    # queue=1, input=2, run=2 → shares 20/40/40
    assert "20" in text and "40" in text


def test_dropped_events_flagged():
    text = trace_summary(sample_stream(), dropped=5)
    assert "dropped 5" in text and "partial" in text


def test_empty_stream_is_harmless():
    text = trace_summary([])
    assert "0 events" in text
    assert "no successful attempts" in text
    assert "none finished" in text


def test_top_n_limits_job_table():
    jobs = [JobSpan(0.0, lane=f"j{i}", dur=float(i + 1),
                    attrs={"job": f"j{i}", "app": "a-0"}) for i in range(6)]
    text = trace_summary(jobs, top_n=2)
    assert "top 2 slowest jobs" in text
    assert "j5" in text and "j4" in text
    assert "j0  " not in text
