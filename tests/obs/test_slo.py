"""SLO engine: spec validation, verdicts, error-budget burn, file loading."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SloSpec,
    default_slos,
    evaluate_slos,
    load_slo_specs,
)

pytestmark = [pytest.mark.obs, pytest.mark.metrics]


def snapshot_with(build):
    reg = MetricsRegistry(clock=lambda: 10.0)
    build(reg)
    return reg.snapshot()


# ------------------------------------------------------------- validation
def test_spec_rejects_unknown_op_and_stat():
    with pytest.raises(ConfigurationError, match="unknown op"):
        SloSpec("x", metric="m", op="!=", threshold=1)
    with pytest.raises(ConfigurationError, match="unknown stat"):
        SloSpec("x", metric="m", op="<=", threshold=1, stat="median")


def test_spec_accepts_quantile_stats():
    spec = SloSpec("x", metric="m", op="<=", threshold=1, stat="p99")
    assert spec.stat == "p99"
    SloSpec("y", metric="m", op="<=", threshold=1, stat="p99.9")


def test_spec_budget_validated():
    with pytest.raises(ConfigurationError, match="budget"):
        SloSpec("x", metric="m", op="<=", threshold=1, budget=1.5)
    with pytest.raises(ConfigurationError, match="ordering op"):
        SloSpec("x", metric="m", op="==", threshold=1, budget=0.1)


# --------------------------------------------------------------- verdicts
def test_gauge_threshold_pass_and_fail():
    snap = snapshot_with(lambda r: r.gauge("unfinished").set(3))
    passing = SloSpec("ok", metric="unfinished", op="<=", threshold=5)
    failing = SloSpec("bad", metric="unfinished", op="<=", threshold=0)
    report = evaluate_slos([passing, failing], snap)
    assert [v.passed for v in report.verdicts] == [True, False]
    assert not report.passed
    assert report.verdicts[0].measured == 3.0


def test_labelled_series_are_summed():
    def build(r):
        fam = r.counter("shed_total", "", ("manager",))
        fam.labels(manager="custody").inc(2)
        fam.labels(manager="yarn").inc(3)

    snap = snapshot_with(build)
    report = evaluate_slos(
        [SloSpec("sum", metric="shed_total", op="==", threshold=5)], snap
    )
    assert report.passed
    # Label filter narrows the aggregation to matching series.
    report = evaluate_slos(
        [SloSpec("one", metric="shed_total", op="==", threshold=2,
                 labels={"manager": "custody"})],
        snap,
    )
    assert report.passed


def test_missing_metric_treated_as_zero_unless_required():
    snap = snapshot_with(lambda r: r.gauge("something_else").set(1))
    lenient = SloSpec("zero-ok", metric="ghost_total", op="<=", threshold=0)
    strict = SloSpec("must-exist", metric="ghost_total", op="<=", threshold=0,
                     required=True)
    report = evaluate_slos([lenient, strict], snap)
    assert report.verdicts[0].passed
    assert report.verdicts[0].detail == "metric absent; treated as 0"
    assert not report.verdicts[1].passed
    assert report.verdicts[1].measured is None


def test_empty_histogram_is_vacuous_unless_required():
    # .labels() materialises the zero-observation series in the snapshot.
    snap = snapshot_with(lambda r: r.histogram("jct", buckets=(1.0, 10.0)).labels())
    lenient = SloSpec("loose", metric="jct", op="<=", threshold=5, stat="p99")
    strict = SloSpec("strict", metric="jct", op="<=", threshold=5, stat="p99",
                     required=True)
    report = evaluate_slos([lenient, strict], snap)
    assert report.verdicts[0].passed and "vacuously" in report.verdicts[0].detail
    assert not report.verdicts[1].passed


def test_histogram_quantile_slo():
    def build(r):
        h = r.histogram("jct", buckets=(1.0, 10.0, 100.0))
        for v in [2.0] * 98 + [50.0, 50.0]:
            h.observe(v)

    snap = snapshot_with(build)
    report = evaluate_slos(
        [SloSpec("p50-tight", metric="jct", op="<=", threshold=10, stat="p50"),
         SloSpec("p99-loose", metric="jct", op="<=", threshold=100, stat="p99")],
        snap,
    )
    assert report.passed


def test_error_budget_burn():
    def build(r):
        h = r.histogram("jct", buckets=(1.0, 10.0, 100.0))
        # 90 fast, 10 slow: 10% of events violate a <=10 per-event target.
        for v in [2.0] * 90 + [50.0] * 10:
            h.observe(v)

    snap = snapshot_with(build)
    # 20% budget: burn = 0.10/0.20 = 0.5x -> pass.
    within = SloSpec("within", metric="jct", op="<=", threshold=10.0,
                     stat="p99", budget=0.2)
    # 5% budget: burn = 0.10/0.05 = 2x -> fail.
    blown = SloSpec("blown", metric="jct", op="<=", threshold=10.0,
                    stat="p99", budget=0.05)
    report = evaluate_slos([within, blown], snap)
    v_within, v_blown = report.verdicts
    assert v_within.passed
    assert v_within.burn == pytest.approx(0.5)
    assert v_within.bad_fraction == pytest.approx(0.10)
    assert not v_blown.passed
    assert v_blown.burn == pytest.approx(2.0)


def test_value_stat_on_histogram_raises():
    snap = snapshot_with(
        lambda r: r.histogram("jct", buckets=(1.0,)).observe(0.5)
    )
    spec = SloSpec("bad", metric="jct", op="<=", threshold=1, stat="value")
    with pytest.raises(ConfigurationError, match="histogram"):
        evaluate_slos([spec], snap)


def test_quantile_stat_on_counter_raises():
    snap = snapshot_with(lambda r: r.counter("c_total").inc())
    spec = SloSpec("bad", metric="c_total", op="<=", threshold=1, stat="p99")
    with pytest.raises(ConfigurationError, match="needs a histogram"):
        evaluate_slos([spec], snap)


# ------------------------------------------------------------ file loading
def test_load_slo_specs_round_trip(tmp_path):
    path = tmp_path / "slos.json"
    path.write_text(json.dumps({
        "slos": [
            {"name": "finish", "metric": "run_jobs_unfinished",
             "op": "<=", "threshold": 0},
            {"name": "p99", "metric": "job_completion_seconds",
             "op": "<=", "threshold": 100, "stat": "p99", "budget": 0.05},
        ]
    }))
    specs = load_slo_specs(path)
    assert [s.name for s in specs] == ["finish", "p99"]
    assert specs[1].budget == 0.05


def test_load_slo_specs_rejects_bad_shapes(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2]")
    with pytest.raises(ConfigurationError, match="'slos' list"):
        load_slo_specs(path)
    path.write_text(json.dumps({"slos": [{"name": "x", "bogus_field": 1}]}))
    with pytest.raises(ConfigurationError, match="slos\\[0\\]"):
        load_slo_specs(path)


def test_default_slos_are_valid_and_evaluable():
    specs = default_slos()
    assert specs
    snap = snapshot_with(lambda r: r.gauge("run_locality_mean").set(0.5))
    report = evaluate_slos(specs, snap)
    assert len(report.verdicts) == len(specs)
    assert "SLOs:" in report.describe()
