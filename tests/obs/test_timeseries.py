"""TimeSeriesSampler: grid ticks, probes, and the quiescence rule."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.events import CounterEvent, DRIVER
from repro.obs.sinks import RingSink
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.tracer import Tracer

pytestmark = pytest.mark.obs


def make_sampler(sim, interval=5.0):
    ring = RingSink()
    tracer = Tracer(clock=lambda: sim.now, sinks=[ring])
    return TimeSeriesSampler(sim, tracer, interval=interval), ring


def test_rejects_nonpositive_interval(sim):
    tracer = Tracer(clock=lambda: sim.now)
    with pytest.raises(ConfigurationError):
        TimeSeriesSampler(sim, tracer, interval=0.0)


def test_rejects_duplicate_series(sim):
    sampler, _ = make_sampler(sim)
    sampler.add_series("x", lambda: 1.0)
    with pytest.raises(ConfigurationError, match="duplicate"):
        sampler.add_series("x", lambda: 2.0)


def test_samples_on_the_virtual_grid(sim):
    sampler, ring = make_sampler(sim, interval=5.0)
    values = iter(range(100))
    sampler.add_series("count", lambda: float(next(values)), cat=DRIVER)
    sim.schedule_at(17.0, lambda: None)  # keeps the sim alive to t=17
    sampler.start()
    sim.run()
    times = [t for t, _ in sampler.samples["count"]]
    assert times == [0.0, 5.0, 10.0, 15.0, 20.0]
    emitted = [e for e in ring.events() if isinstance(e, CounterEvent)]
    assert [e.ts for e in emitted] == times
    assert all(e.name == "count" for e in emitted)


def test_sampler_never_keeps_sim_alive(sim):
    """With no other pending work the sampler must let the run end."""
    sampler, _ = make_sampler(sim, interval=1.0)
    sampler.add_series("x", lambda: 0.0)
    sim.schedule_at(2.5, lambda: None)
    sampler.start()
    sim.run()
    final = sim.now
    # One trailing tick past the last real event is allowed (the grid point
    # armed while work was still pending), but nothing beyond it.
    assert final <= 3.0 + 1.0
    assert sim.pending_events == 0


def test_latest_returns_most_recent_value(sim):
    sampler, _ = make_sampler(sim, interval=2.0)
    box = {"v": 1.0}
    sampler.add_series("v", lambda: box["v"])
    assert sampler.latest("v") is None
    sim.schedule_at(3.0, lambda: box.update(v=9.0))
    sampler.start()
    sim.run()
    assert sampler.latest("v") == 9.0


def test_probes_do_not_run_when_probe_list_empty(sim):
    sampler, ring = make_sampler(sim)
    sim.schedule_at(12.0, lambda: None)
    sampler.start()
    sim.run()
    assert sampler.ticks >= 1
    assert ring.events() == []


def test_flush_adds_end_of_run_point_after_sampler_disarms(sim):
    """Work that lands after the last grid tick still closes every series.

    Once the sampler stops re-arming (quiescence rule), a later burst of
    events advances the clock unsampled; the runner's flush() records the
    final state.
    """
    sampler, _ = make_sampler(sim, interval=5.0)
    sampler.add_series("x", lambda: sim.now)
    sim.schedule_at(4.0, lambda: None)
    sampler.start()
    sim.run()  # samples at 0.0 plus one trailing tick at 5.0, then disarms
    sim.schedule_at(8.0, lambda: None)
    sim.run()
    assert [t for t, _ in sampler.samples["x"]] == [0.0, 5.0]
    sampler.flush()
    assert [t for t, _ in sampler.samples["x"]] == [0.0, 5.0, 8.0]


def test_flush_cancels_the_armed_grid_tick(sim):
    """Flushing mid-flight tears down the pending grid event."""
    sampler, _ = make_sampler(sim, interval=50.0)
    sampler.add_series("x", lambda: 1.0)
    sampler.start()  # samples at t=0 and arms a tick at t=50
    sampler.flush()
    sim.run()
    assert sim.now == 0.0  # the t=50 tick never fired
    assert sampler.samples["x"] == [(0.0, 1.0)]


def test_flush_is_idempotent(sim):
    sampler, _ = make_sampler(sim, interval=100.0)
    sampler.add_series("x", lambda: 1.0)
    sim.schedule_at(3.0, lambda: None)
    sampler.start()
    sim.run()
    sampler.flush()
    before = list(sampler.samples["x"])
    sampler.flush()
    sampler.flush()
    assert sampler.samples["x"] == before


def test_flush_skips_duplicate_when_grid_just_sampled(sim):
    """If the last grid tick landed exactly at sim.now, flush adds nothing."""
    sampler, _ = make_sampler(sim, interval=5.0)
    sampler.add_series("x", lambda: 1.0)
    sim.schedule_at(10.0, lambda: None)
    sampler.start()
    sim.run()
    times = [t for t, _ in sampler.samples["x"]]
    assert times[-1] == sim.now  # grid point coincides with the final event
    sampler.flush()
    assert [t for t, _ in sampler.samples["x"]] == times


def test_as_dict_projection(sim):
    sampler, _ = make_sampler(sim, interval=5.0)
    sampler.add_series("a", lambda: 2.0)
    sampler.add_series("b", lambda: 3.0)
    sim.schedule_at(6.0, lambda: None)
    sampler.start()
    sim.run()
    sampler.flush()
    d = sampler.as_dict()
    assert d["interval"] == 5.0
    assert d["ticks"] == sampler.ticks
    assert set(d["series"]) == {"a", "b"}
    assert d["series"]["a"][0] == [0.0, 2.0]
    assert all(isinstance(p, list) and len(p) == 2 for p in d["series"]["a"])
