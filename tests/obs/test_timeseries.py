"""TimeSeriesSampler: grid ticks, probes, and the quiescence rule."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.events import CounterEvent, DRIVER
from repro.obs.sinks import RingSink
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.tracer import Tracer

pytestmark = pytest.mark.obs


def make_sampler(sim, interval=5.0):
    ring = RingSink()
    tracer = Tracer(clock=lambda: sim.now, sinks=[ring])
    return TimeSeriesSampler(sim, tracer, interval=interval), ring


def test_rejects_nonpositive_interval(sim):
    tracer = Tracer(clock=lambda: sim.now)
    with pytest.raises(ConfigurationError):
        TimeSeriesSampler(sim, tracer, interval=0.0)


def test_rejects_duplicate_series(sim):
    sampler, _ = make_sampler(sim)
    sampler.add_series("x", lambda: 1.0)
    with pytest.raises(ConfigurationError, match="duplicate"):
        sampler.add_series("x", lambda: 2.0)


def test_samples_on_the_virtual_grid(sim):
    sampler, ring = make_sampler(sim, interval=5.0)
    values = iter(range(100))
    sampler.add_series("count", lambda: float(next(values)), cat=DRIVER)
    sim.schedule_at(17.0, lambda: None)  # keeps the sim alive to t=17
    sampler.start()
    sim.run()
    times = [t for t, _ in sampler.samples["count"]]
    assert times == [0.0, 5.0, 10.0, 15.0, 20.0]
    emitted = [e for e in ring.events() if isinstance(e, CounterEvent)]
    assert [e.ts for e in emitted] == times
    assert all(e.name == "count" for e in emitted)


def test_sampler_never_keeps_sim_alive(sim):
    """With no other pending work the sampler must let the run end."""
    sampler, _ = make_sampler(sim, interval=1.0)
    sampler.add_series("x", lambda: 0.0)
    sim.schedule_at(2.5, lambda: None)
    sampler.start()
    sim.run()
    final = sim.now
    # One trailing tick past the last real event is allowed (the grid point
    # armed while work was still pending), but nothing beyond it.
    assert final <= 3.0 + 1.0
    assert sim.pending_events == 0


def test_latest_returns_most_recent_value(sim):
    sampler, _ = make_sampler(sim, interval=2.0)
    box = {"v": 1.0}
    sampler.add_series("v", lambda: box["v"])
    assert sampler.latest("v") is None
    sim.schedule_at(3.0, lambda: box.update(v=9.0))
    sampler.start()
    sim.run()
    assert sampler.latest("v") == 9.0


def test_probes_do_not_run_when_probe_list_empty(sim):
    sampler, ring = make_sampler(sim)
    sim.schedule_at(12.0, lambda: None)
    sampler.start()
    sim.run()
    assert sampler.ticks >= 1
    assert ring.events() == []
