"""Tracing must observe, never perturb: traced == untraced metrics.

The core acceptance property of the observability layer — running the
identical experiment with tracing enabled produces the exact same
:class:`ExperimentMetrics` (and the same virtual end time up to trailing
sampler ticks) as running it dark.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.events import LAYERS

pytestmark = pytest.mark.obs


@st.composite
def small_configs(draw):
    return ExperimentConfig(
        manager=draw(st.sampled_from(["custody", "standalone", "yarn", "mesos"])),
        workload=draw(st.sampled_from(["wordcount", "sort"])),
        num_nodes=draw(st.integers(min_value=8, max_value=12)),
        num_apps=2,
        jobs_per_app=draw(st.integers(min_value=1, max_value=2)),
        seed=draw(st.integers(min_value=0, max_value=50)),
        trace_sample_interval=draw(st.sampled_from([2.0, 5.0])),
    )


@given(small_configs())
@settings(max_examples=8, deadline=None)
def test_tracing_changes_no_metrics(config):
    dark = run_experiment(replace(config, trace=False))
    traced = run_experiment(replace(config, trace=True))
    assert traced.metrics == dark.metrics
    assert traced.allocation_rounds == dark.allocation_rounds
    assert traced.speculative_launches == dark.speculative_launches
    # The sampler may add trailing grid ticks after the last real event but
    # never more than one interval past the untraced end time.
    assert traced.sim_time >= dark.sim_time
    assert traced.sim_time <= dark.sim_time + 2 * config.trace_sample_interval


def test_traced_run_exposes_events_from_core_layers():
    config = ExperimentConfig(
        manager="custody", workload="wordcount", num_nodes=10,
        num_apps=2, jobs_per_app=2, seed=3, trace=True,
    )
    result = run_experiment(config)
    assert result.tracer is not None and result.trace_events
    cats = {e.cat for e in result.trace_events}
    # A fault-free run exercises everything except the faults layer.
    assert set(LAYERS) - {"faults"} <= cats
    assert all(e.ts >= 0.0 for e in result.trace_events)
    assert result.sampler is not None and result.sampler.ticks >= 1


def test_untraced_run_exposes_no_trace():
    config = ExperimentConfig(
        manager="custody", workload="wordcount", num_nodes=8,
        num_apps=2, jobs_per_app=1, seed=1,
    )
    result = run_experiment(config)
    assert result.tracer is None
    assert result.trace_events is None
    assert result.sampler is None
