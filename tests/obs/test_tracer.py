"""Tracer fan-out, the NULL_TRACER contract, and sink behaviour."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.events import DRIVER, NETWORK, CounterEvent, SpanEvent, TraceEvent
from repro.obs.sinks import JsonlSink, RingSink
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

pytestmark = pytest.mark.obs


class TestTracer:
    def test_emit_fans_out_to_every_sink(self):
        a, b = RingSink(), RingSink()
        tracer = Tracer(sinks=[a, b])
        ev = TraceEvent(1.0, "x", DRIVER)
        tracer.emit(ev)
        assert a.events() == [ev]
        assert b.events() == [ev]

    def test_disabled_tracer_emits_nothing(self):
        ring = RingSink()
        tracer = Tracer(sinks=[ring], enabled=False)
        tracer.emit(TraceEvent(1.0, "x"))
        tracer.instant("y", DRIVER)
        tracer.counter("z", DRIVER, 1.0)
        tracer.span("w", DRIVER, 0.0, 1.0)
        assert len(ring) == 0

    def test_instant_uses_clock(self):
        ring = RingSink()
        tracer = Tracer(clock=lambda: 42.0, sinks=[ring])
        tracer.instant("tick", NETWORK, track="n1", detail=3)
        (ev,) = ring.events()
        assert ev.ts == 42.0
        assert ev.name == "tick"
        assert ev.get("detail") == 3

    def test_instant_without_clock_raises(self):
        tracer = Tracer(sinks=[RingSink()])
        with pytest.raises(RuntimeError, match="no clock"):
            tracer.instant("tick", DRIVER)

    def test_span_defaults_end_to_clock_now(self):
        ring = RingSink()
        tracer = Tracer(clock=lambda: 10.0, sinks=[ring])
        tracer.span("work", DRIVER, start=4.0)
        (ev,) = ring.events()
        assert isinstance(ev, SpanEvent)
        assert ev.ts == 4.0 and ev.dur == pytest.approx(6.0)
        assert ev.end == pytest.approx(10.0)

    def test_counter_event_shape(self):
        ring = RingSink()
        tracer = Tracer(clock=lambda: 5.0, sinks=[ring])
        tracer.counter("queue.depth", DRIVER, 7.0, track="cluster")
        (ev,) = ring.events()
        assert isinstance(ev, CounterEvent)
        assert ev.value == 7.0 and ev.phase == "C"

    def test_events_reads_first_ring_sink(self):
        ring = RingSink()
        tracer = Tracer(sinks=[ring])
        tracer.emit(TraceEvent(1.0, "x"))
        assert [e.name for e in tracer.events()] == ["x"]
        assert Tracer(sinks=[]).events() == []

    def test_add_sink_sees_only_future_events(self):
        first = RingSink()
        tracer = Tracer(sinks=[first])
        tracer.emit(TraceEvent(1.0, "old"))
        late = RingSink()
        tracer.add_sink(late)
        tracer.emit(TraceEvent(2.0, "new"))
        assert [e.name for e in late.events()] == ["new"]
        assert len(first) == 2


class TestNullTracer:
    def test_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(TraceEvent(1.0, "x"))  # no-op, no error
        NULL_TRACER.instant("y", DRIVER)
        assert NULL_TRACER.events() == []

    def test_rejects_sinks(self):
        with pytest.raises(RuntimeError, match="shared"):
            NULL_TRACER.add_sink(RingSink())

    def test_is_a_tracer(self):
        assert isinstance(NullTracer(), Tracer)


class TestRingSink:
    def test_bounded_eviction_counts_dropped(self):
        ring = RingSink(capacity=3)
        for i in range(5):
            ring.write(TraceEvent(float(i), f"e{i}"))
        assert len(ring) == 3
        assert ring.total == 5
        assert ring.dropped == 2
        assert [e.name for e in ring.events()] == ["e2", "e3", "e4"]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            RingSink(capacity=0)

    def test_unbounded_when_capacity_none(self):
        ring = RingSink(capacity=None)
        for i in range(10):
            ring.write(TraceEvent(float(i)))
        assert len(ring) == 10 and ring.dropped == 0


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.write(SpanEvent(1.5, "task.attempt", DRIVER, "n1", "e1",
                             {"outcome": "success"}, dur=2.0))
        sink.write(TraceEvent(4.0, "net.stall", NETWORK, "n2"))
        sink.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0] == {
            "ts": 1.5, "name": "task.attempt", "cat": DRIVER, "ph": "X",
            "track": "n1", "lane": "e1", "attrs": {"outcome": "success"},
            "dur": 2.0,
        }
        assert records[1]["ph"] == "i" and "lane" not in records[1]

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        with pytest.raises(ConfigurationError, match="closed"):
            sink.write(TraceEvent(0.0, "x"))
        sink.close()  # idempotent
