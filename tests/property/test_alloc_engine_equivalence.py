"""Property: the heap and vectorized allocation engines equal the reference.

For *any* demand round — arbitrary app/job/task shapes, candidate sets,
quotas, held counts, locality histories, fill configurations and executor
capacities — ``two_level_allocate_incremental`` and
``two_level_allocate_vectorized`` must produce plans whose signatures
(grants, task assignments, releases) are identical to the reference
``two_level_allocate``.  The match is exact by construction: all engines
walk the same (locality-key, grant-step) sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    two_level_allocate,
    two_level_allocate_incremental,
    two_level_allocate_vectorized,
)
from repro.core.demand import AppDemand, JobDemand, TaskDemand


@st.composite
def demand_rounds(draw):
    """One complete allocation-round input."""
    n_execs = draw(st.integers(min_value=0, max_value=10))
    idle = [f"E{i}" for i in range(n_execs)]
    n_apps = draw(st.integers(min_value=0, max_value=5))
    apps = []
    for a in range(n_apps):
        n_jobs = draw(st.integers(min_value=0, max_value=3))
        jobs = []
        for j in range(n_jobs):
            n_tasks = draw(st.integers(min_value=1, max_value=4))
            tasks = []
            for t in range(n_tasks):
                cands = draw(
                    st.lists(st.sampled_from(idle), max_size=4, unique=True)
                    if idle
                    else st.just([])
                )
                tasks.append(TaskDemand.of(f"A{a}-J{j}-t{t}", cands))
            jobs.append(JobDemand(f"A{a}-J{j}", tuple(tasks)))
        quota = draw(st.integers(min_value=0, max_value=6))
        decided_jobs = draw(st.integers(min_value=0, max_value=8))
        decided_tasks = draw(st.integers(min_value=decided_jobs, max_value=20))
        apps.append(
            AppDemand(
                app_id=f"A{a}",
                jobs=tuple(jobs),
                quota=quota,
                held=draw(st.integers(min_value=0, max_value=quota)),
                local_jobs=draw(st.integers(min_value=0, max_value=decided_jobs)),
                decided_jobs=decided_jobs,
                local_tasks=draw(st.integers(min_value=0, max_value=decided_tasks)),
                decided_tasks=decided_tasks,
            )
        )
    fill = draw(st.booleans())
    fill_limits = None
    if draw(st.booleans()):
        fill_limits = {
            a.app_id: draw(st.integers(min_value=0, max_value=4)) for a in apps
        }
    capacity = draw(st.integers(min_value=1, max_value=3))
    return apps, idle, fill, fill_limits, capacity


@given(demand_rounds())
@settings(max_examples=300, deadline=None)
def test_engines_produce_identical_plans(round_input):
    apps, idle, fill, fill_limits, capacity = round_input
    ref = two_level_allocate(
        apps, list(idle), fill=fill, fill_limits=fill_limits,
        executor_capacity=capacity,
    )
    inc = two_level_allocate_incremental(
        apps, list(idle), fill=fill, fill_limits=fill_limits,
        executor_capacity=capacity,
    )
    vec = two_level_allocate_vectorized(
        apps, list(idle), fill=fill, fill_limits=fill_limits,
        executor_capacity=capacity,
    )
    assert ref.signature() == inc.signature()
    assert ref.signature() == vec.signature()
