"""Property tests: the two-level allocator always emits feasible, fair plans."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import two_level_allocate
from repro.core.demand import AppDemand, JobDemand, TaskDemand, validate_plan
from repro.core.fairness import lexmin_key


@st.composite
def allocation_instances(draw):
    n_execs = draw(st.integers(min_value=1, max_value=10))
    executors = [f"E{i}" for i in range(n_execs)]
    n_apps = draw(st.integers(min_value=1, max_value=4))
    apps = []
    task_seq = 0
    for a in range(n_apps):
        n_jobs = draw(st.integers(min_value=0, max_value=3))
        jobs = []
        for j in range(n_jobs):
            n_tasks = draw(st.integers(min_value=1, max_value=4))
            tasks = []
            for _t in range(n_tasks):
                k = draw(st.integers(min_value=0, max_value=min(3, n_execs)))
                cands = draw(
                    st.lists(
                        st.sampled_from(executors), min_size=0, max_size=k, unique=True
                    )
                )
                tasks.append(TaskDemand.of(f"T{task_seq}", cands))
                task_seq += 1
            jobs.append(JobDemand(f"A{a}-J{j}", tuple(tasks)))
        quota = draw(st.integers(min_value=0, max_value=n_execs))
        held = draw(st.integers(min_value=0, max_value=quota))
        decided_jobs = draw(st.integers(min_value=0, max_value=5))
        local_jobs = draw(st.integers(min_value=0, max_value=decided_jobs))
        apps.append(
            AppDemand(
                app_id=f"A{a}",
                jobs=tuple(jobs),
                quota=quota,
                held=held,
                local_jobs=local_jobs,
                decided_jobs=decided_jobs,
                local_tasks=local_jobs,
                decided_tasks=decided_jobs,
            )
        )
    capacity = draw(st.integers(min_value=1, max_value=4))
    fill = draw(st.booleans())
    return apps, executors, capacity, fill


@given(allocation_instances())
@settings(max_examples=300, deadline=None)
def test_plans_always_satisfy_paper_constraints(instance):
    """Eq. 2–5 feasibility for every generated instance."""
    apps, executors, capacity, fill = instance
    plan = two_level_allocate(
        apps, executors, fill=fill, executor_capacity=capacity
    )
    validate_plan(plan, apps, executors, executor_capacity=capacity)


@given(allocation_instances())
@settings(max_examples=300, deadline=None)
def test_grants_never_exceed_pool_or_quota(instance):
    apps, executors, capacity, fill = instance
    plan = two_level_allocate(apps, executors, fill=fill, executor_capacity=capacity)
    assert plan.total_granted <= len(executors)
    for app in apps:
        assert len(plan.executors_of(app.app_id)) <= app.budget


@given(allocation_instances())
@settings(max_examples=200, deadline=None)
def test_every_assignment_is_to_a_candidate(instance):
    apps, executors, capacity, fill = instance
    plan = two_level_allocate(apps, executors, fill=fill, executor_capacity=capacity)
    candidates = {
        t.task_id: t.candidates for a in apps for j in a.jobs for t in j.tasks
    }
    for task_id, executor in plan.assignment.items():
        assert executor in candidates[task_id]


@given(allocation_instances())
@settings(max_examples=200, deadline=None)
def test_determinism(instance):
    apps, executors, capacity, fill = instance
    p1 = two_level_allocate(apps, executors, fill=fill, executor_capacity=capacity)
    p2 = two_level_allocate(apps, executors, fill=fill, executor_capacity=capacity)
    assert p1.grants == p2.grants
    assert p1.assignment == p2.assignment


@given(allocation_instances())
@settings(max_examples=200, deadline=None)
def test_no_wasted_locality(instance):
    """If a task is unpromised, then after the run every one of its candidate
    executors is either granted away or consumed — the allocator never leaves
    a mutually-agreeable pair on the table when budget remains."""
    apps, executors, capacity, fill = instance
    plan = two_level_allocate(apps, executors, fill=False, executor_capacity=capacity)
    granted = {e for exes in plan.grants.values() for e in exes}
    for app in apps:
        took = len(plan.executors_of(app.app_id))
        budget_left = app.budget - took
        if budget_left <= 0:
            continue
        for job in app.jobs:
            for task in job.tasks:
                if task.task_id in plan.assignment:
                    continue
                # Any free candidate would have been taken.
                free_candidates = set(task.candidates) - granted
                assert not free_candidates, (
                    f"task {task.task_id} left unpromised with free candidates "
                    f"{free_candidates} and budget {budget_left}"
                )
