"""Property tests: BlockCache LRU invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs.blocks import Block
from repro.hdfs.cache import BlockCache


@st.composite
def cache_workloads(draw):
    capacity = draw(st.floats(min_value=1.0, max_value=100.0))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "touch", "evict"]),
                st.integers(min_value=0, max_value=20),  # block index
                st.floats(min_value=0.5, max_value=40.0),  # size (insert only)
            ),
            min_size=1,
            max_size=60,
        )
    )
    return capacity, ops


def apply_ops(cache, ops):
    sizes = {}
    for op, idx, size in ops:
        block_id = f"b-{idx}"
        if op == "insert":
            size = sizes.setdefault(idx, size)  # stable size per id
            cache.insert(Block(block_id, path="/f", index=idx, size=size))
        elif op == "touch":
            cache.touch(block_id)
        else:
            cache.evict(block_id)
    return sizes


@given(cache_workloads())
@settings(max_examples=300)
def test_capacity_never_exceeded(workload):
    capacity, ops = workload
    cache = BlockCache("n", capacity)
    apply_ops(cache, ops)
    assert cache.used <= capacity + 1e-9


@given(cache_workloads())
@settings(max_examples=300)
def test_used_equals_sum_of_held_blocks(workload):
    capacity, ops = workload
    cache = BlockCache("n", capacity)
    sizes = apply_ops(cache, ops)
    held = sum(size for idx, size in sizes.items() if cache.holds(f"b-{idx}"))
    # += / -= accumulation may drift by float epsilon; the invariant is
    # equality up to that.
    assert abs(cache.used - held) < 1e-6


@given(cache_workloads())
@settings(max_examples=200)
def test_last_inserted_fitting_block_is_resident(workload):
    capacity, ops = workload
    cache = BlockCache("n", capacity)
    sizes = {}
    last_fitting = None
    for op, idx, size in ops:
        block_id = f"b-{idx}"
        if op == "insert":
            size = sizes.setdefault(idx, size)
            cache.insert(Block(block_id, path="/f", index=idx, size=size))
            if size <= capacity:
                last_fitting = block_id
            elif last_fitting == block_id:
                last_fitting = None
        elif op == "evict":
            cache.evict(block_id)
            if last_fitting == block_id:
                last_fitting = None
        else:
            cache.touch(block_id)
    if last_fitting is not None:
        assert cache.holds(last_fitting)


@given(cache_workloads())
@settings(max_examples=200)
def test_counters_consistent(workload):
    capacity, ops = workload
    cache = BlockCache("n", capacity)
    apply_ops(cache, ops)
    assert cache.hits + cache.misses == sum(1 for op, *_ in ops if op == "touch")
    assert cache.evictions >= 0
    assert cache.insertions >= cache.block_count
