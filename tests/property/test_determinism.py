"""Property tests: full-stack determinism — same seed, same everything."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    manager=st.sampled_from(["standalone", "custody", "yarn", "mesos"]),
)
@settings(max_examples=8, deadline=None)
def test_same_seed_same_timeline_fingerprint(seed, manager):
    config = ExperimentConfig(
        manager=manager,
        workload="pagerank",
        num_nodes=8,
        num_apps=2,
        jobs_per_app=2,
        seed=seed,
        timeline_enabled=True,
    )
    r1 = run_experiment(config)
    r2 = run_experiment(config)
    assert r1.timeline is not None and r2.timeline is not None
    assert r1.timeline.fingerprint() == r2.timeline.fingerprint()
    assert r1.metrics == r2.metrics
    assert r1.sim_time == r2.sim_time


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=5, deadline=None)
def test_policy_does_not_perturb_workload(seed):
    """Changing only the manager leaves job structure and arrivals intact."""
    base = ExperimentConfig(
        manager="custody",
        workload="sort",
        num_nodes=8,
        num_apps=2,
        jobs_per_app=2,
        seed=seed,
    )
    shapes = {}
    for manager in ("custody", "standalone"):
        result = run_experiment(base.with_manager(manager))
        shapes[manager] = [
            (
                j.job_id,
                j.num_input_tasks,
                tuple(t.block.block_id for t in j.input_tasks),
                round(j.submitted_at, 12),
            )
            for a in result.apps
            for j in a.jobs
        ]
    assert shapes["custody"] == shapes["standalone"]


def test_task_conservation_invariant():
    """Every input task runs exactly once: sum over executors == task count."""
    config = ExperimentConfig(
        manager="custody",
        workload="wordcount",
        num_nodes=10,
        num_apps=2,
        jobs_per_app=2,
        seed=4,
        timeline_enabled=True,
    )
    result = run_experiment(config)
    starts = result.timeline.of_kind("task.start")
    finishes = result.timeline.of_kind("task.finish")
    assert len(starts) == len(finishes)
    started_ids = [r.subject for r in starts]
    assert len(started_ids) == len(set(started_ids))
    total_tasks = sum(len(j.all_tasks) for a in result.apps for j in a.jobs)
    assert len(started_ids) == total_tasks
