"""Property tests: the DES engine's ordering and clock invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Simulation


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=100)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulation()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
@settings(max_examples=100)
def test_equal_time_events_fire_in_schedule_order(delays):
    sim = Simulation()
    fired = []
    # Half the events share one timestamp: insertion order must hold.
    t = max(delays)
    for i in range(len(delays)):
        sim.schedule(t, fired.append, i)
    sim.run()
    assert fired == list(range(len(delays)))


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=2, max_size=30),
    cancel_index=st.integers(min_value=0, max_value=29),
)
@settings(max_examples=100)
def test_cancellation_removes_exactly_one_event(delays, cancel_index):
    cancel_index %= len(delays)
    sim = Simulation()
    fired = []
    handles = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    handles[cancel_index].cancel()
    sim.run()
    assert cancel_index not in fired
    assert sorted(fired) == [i for i in range(len(delays)) if i != cancel_index]


@given(
    splits=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=10)
)
@settings(max_examples=50)
def test_run_until_composition_equals_single_run(splits):
    """Running in segments produces the same trace as one run."""

    def build():
        sim = Simulation()
        fired = []
        t = 0.0
        for i, gap in enumerate(splits):
            t += gap
            sim.schedule_at(t, fired.append, i)
        return sim, fired

    sim_a, fired_a = build()
    sim_a.run()

    sim_b, fired_b = build()
    checkpoint = sum(splits) / 2
    sim_b.run(until=checkpoint)
    sim_b.run()
    assert fired_a == fired_b
