"""Property tests: the system survives arbitrary (bounded) fault plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import (
    DiskFailure,
    ExecutorFailure,
    FaultPlan,
    LinkDegradation,
    NetworkPartition,
    NodeFailure,
    NodeSlowdown,
)

pytestmark = pytest.mark.faults

NUM_NODES = 10
NUM_EXECUTORS = NUM_NODES * 2

BASE = dict(
    manager="custody", workload="pagerank", num_nodes=NUM_NODES,
    num_apps=2, jobs_per_app=2,
)


@st.composite
def fault_plans(draw):
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(
            st.sampled_from(["slow", "exec", "disk", "node", "partition", "degrade"])
        )
        at = draw(st.floats(min_value=0.0, max_value=60.0))
        if kind == "slow":
            events.append(
                NodeSlowdown(
                    at=at,
                    node_id=f"worker-{draw(st.integers(0, NUM_NODES - 1)):03d}",
                    duration=draw(st.floats(min_value=1.0, max_value=100.0)),
                    factor=draw(st.floats(min_value=1.0, max_value=10.0)),
                )
            )
        elif kind == "exec":
            events.append(
                ExecutorFailure(
                    at=at,
                    executor_id=f"executor-{draw(st.integers(0, NUM_EXECUTORS - 1)):03d}",
                    restart_delay=draw(st.floats(min_value=0.0, max_value=30.0)),
                )
            )
        elif kind == "disk":
            events.append(
                DiskFailure(
                    at=at,
                    node_id=f"worker-{draw(st.integers(0, NUM_NODES - 1)):03d}",
                    re_replicate=draw(st.booleans()),
                )
            )
        elif kind == "node":
            events.append(
                NodeFailure(
                    at=at,
                    node_id=f"worker-{draw(st.integers(0, NUM_NODES - 1)):03d}",
                    restart_delay=draw(st.floats(min_value=1.0, max_value=60.0)),
                    re_replicate=draw(st.booleans()),
                )
            )
        elif kind == "partition":
            members = draw(
                st.sets(
                    st.integers(0, NUM_NODES - 1), min_size=1,
                    max_size=NUM_NODES // 2,
                )
            )
            events.append(
                NetworkPartition(
                    at=at,
                    duration=draw(st.floats(min_value=1.0, max_value=40.0)),
                    nodes=tuple(f"worker-{i:03d}" for i in sorted(members)),
                )
            )
        else:
            events.append(
                LinkDegradation(
                    at=at,
                    node_id=f"worker-{draw(st.integers(0, NUM_NODES - 1)):03d}",
                    duration=draw(st.floats(min_value=1.0, max_value=60.0)),
                    factor=draw(st.floats(min_value=1.1, max_value=8.0)),
                )
            )
    return FaultPlan(events)


@given(
    plan=fault_plans(),
    seed=st.integers(min_value=0, max_value=100),
    stale_views=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_every_job_finishes_despite_faults(plan, seed, stale_views):
    """Liveness: no bounded fault plan may wedge the system."""
    result = run_experiment(
        ExperimentConfig(
            seed=seed,
            detector_timeout=15.0 if stale_views else None,
            **BASE,
        ),
        fault_plan=plan,
    )
    assert result.metrics.unfinished_jobs == 0


@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_task_conservation_despite_faults(plan, seed):
    """Every task finishes exactly once or is accounted as abandoned."""
    result = run_experiment(
        ExperimentConfig(seed=seed, timeline_enabled=True, **BASE),
        fault_plan=plan,
    )
    finish_ids = [r.subject for r in result.timeline.of_kind("task.finish")]
    assert len(finish_ids) == len(set(finish_ids))
    finish_set = set(finish_ids)
    tasks = [t for a in result.apps for j in a.jobs for t in j.all_tasks]
    for task in tasks:
        # XOR: finished exactly once, or cancelled (abandoned) — never
        # both, never neither.
        assert (task.task_id in finish_set) != task.cancelled
    cancelled = sum(1 for t in tasks if t.cancelled)
    assert len(finish_ids) == len(tasks) - cancelled


@given(plan=fault_plans())
@settings(max_examples=10, deadline=None)
def test_fault_runs_are_deterministic(plan):
    """Identical plan + seed → identical outcome."""
    config = ExperimentConfig(seed=7, **BASE)
    r1 = run_experiment(config, fault_plan=plan)
    r2 = run_experiment(config, fault_plan=plan)
    assert r1.metrics == r2.metrics
