"""Property tests: the system survives arbitrary (bounded) fault plans."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import DiskFailure, ExecutorFailure, FaultPlan, NodeSlowdown

NUM_NODES = 10
NUM_EXECUTORS = NUM_NODES * 2

BASE = dict(
    manager="custody", workload="pagerank", num_nodes=NUM_NODES,
    num_apps=2, jobs_per_app=2,
)


@st.composite
def fault_plans(draw):
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["slow", "exec", "disk"]))
        at = draw(st.floats(min_value=0.0, max_value=60.0))
        if kind == "slow":
            events.append(
                NodeSlowdown(
                    at=at,
                    node_id=f"worker-{draw(st.integers(0, NUM_NODES - 1)):03d}",
                    duration=draw(st.floats(min_value=1.0, max_value=100.0)),
                    factor=draw(st.floats(min_value=1.0, max_value=10.0)),
                )
            )
        elif kind == "exec":
            events.append(
                ExecutorFailure(
                    at=at,
                    executor_id=f"executor-{draw(st.integers(0, NUM_EXECUTORS - 1)):03d}",
                    restart_delay=draw(st.floats(min_value=0.0, max_value=30.0)),
                )
            )
        else:
            events.append(
                DiskFailure(
                    at=at,
                    node_id=f"worker-{draw(st.integers(0, NUM_NODES - 1)):03d}",
                    re_replicate=draw(st.booleans()),
                )
            )
    return FaultPlan(events)


@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_every_job_finishes_despite_faults(plan, seed):
    """Liveness: no bounded fault plan may wedge the system."""
    result = run_experiment(
        ExperimentConfig(seed=seed, **BASE), fault_plan=plan
    )
    assert result.metrics.unfinished_jobs == 0


@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_task_conservation_despite_faults(plan, seed):
    """Every non-cancelled task finishes exactly once, even when requeued."""
    result = run_experiment(
        ExperimentConfig(seed=seed, timeline_enabled=True, **BASE),
        fault_plan=plan,
    )
    finish_ids = [r.subject for r in result.timeline.of_kind("task.finish")]
    assert len(finish_ids) == len(set(finish_ids))
    total_tasks = sum(len(j.all_tasks) for a in result.apps for j in a.jobs)
    assert len(finish_ids) == total_tasks


@given(plan=fault_plans())
@settings(max_examples=10, deadline=None)
def test_fault_runs_are_deterministic(plan):
    """Identical plan + seed → identical outcome."""
    config = ExperimentConfig(seed=7, **BASE)
    r1 = run_experiment(config, fault_plan=plan)
    r2 = run_experiment(config, fault_plan=plan)
    assert r1.metrics == r2.metrics
