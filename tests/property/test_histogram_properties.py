"""Hypothesis properties of the bucket histogram.

The quantile/merge guarantees the SLO and diff layers lean on:
monotonicity in q, range containment, merge order-independence and
count/sum conservation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram

pytestmark = pytest.mark.metrics

values = st.floats(
    min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(values, min_size=1, max_size=200)
bucket_sets = st.sampled_from([
    DEFAULT_BUCKETS,
    (1.0,),
    (1.0, 2.0, 4.0, 8.0),
    (10.0, 1000.0),
])


def fill(bounds, data):
    h = Histogram(bounds)
    for v in data:
        h.observe(v)
    return h


@given(bucket_sets, value_lists, st.lists(st.floats(0.0, 1.0), min_size=2, max_size=10))
@settings(max_examples=200, deadline=None)
def test_quantiles_monotone_in_q_and_within_range(bounds, data, qs):
    h = fill(bounds, data)
    lo, hi = min(data), max(data)
    results = h.quantiles(sorted(qs))
    for q_value in results:
        assert lo <= q_value <= hi
    assert results == sorted(results)


@given(bucket_sets, value_lists, value_lists)
@settings(max_examples=200, deadline=None)
def test_merge_is_order_independent(bounds, data_a, data_b):
    ab = fill(bounds, data_a)
    ab.merge(fill(bounds, data_b))
    ba = fill(bounds, data_b)
    ba.merge(fill(bounds, data_a))
    assert ab.counts == ba.counts
    assert ab.count == ba.count
    assert ab.sum == pytest.approx(ba.sum)
    assert ab.min == ba.min and ab.max == ba.max
    for q in (0.5, 0.9, 0.99):
        assert ab.quantile(q) == pytest.approx(ba.quantile(q))


@given(bucket_sets, value_lists, value_lists)
@settings(max_examples=200, deadline=None)
def test_merge_conserves_count_and_sum(bounds, data_a, data_b):
    merged = fill(bounds, data_a)
    merged.merge(fill(bounds, data_b))
    assert merged.count == len(data_a) + len(data_b)
    assert merged.sum == pytest.approx(sum(data_a) + sum(data_b))
    assert sum(merged.counts) == merged.count
    assert merged.min == min(data_a + data_b)
    assert merged.max == max(data_a + data_b)


@given(bucket_sets, value_lists)
@settings(max_examples=200, deadline=None)
def test_merge_equals_observing_everything_in_one(bounds, data):
    """Splitting a stream across histograms then merging loses nothing."""
    whole = fill(bounds, data)
    parts = fill(bounds, data[::2])
    parts.merge(fill(bounds, data[1::2]))
    assert parts.counts == whole.counts
    assert parts.count == whole.count
    assert parts.sum == pytest.approx(whole.sum)


@given(bucket_sets, value_lists, values)
@settings(max_examples=200, deadline=None)
def test_fraction_leq_bounded_and_monotone(bounds, data, threshold):
    h = fill(bounds, data)
    frac = h.fraction_leq(threshold)
    assert 0.0 <= frac <= 1.0
    assert h.fraction_leq(threshold + 1.0) >= frac
    assert h.fraction_leq(max(data)) == 1.0
    assert h.fraction_leq(min(data) - 1e-9) == 0.0


@given(bucket_sets, value_lists)
@settings(max_examples=100, deadline=None)
def test_dict_round_trip_preserves_quantiles(bounds, data):
    h = fill(bounds, data)
    back = Histogram.from_dict(h.as_dict())
    for q in (0.0, 0.5, 0.99, 1.0):
        assert back.quantile(q) == h.quantile(q)
    assert back.fraction_leq(sum(data) / len(data)) == pytest.approx(
        h.fraction_leq(sum(data) / len(data))
    )
