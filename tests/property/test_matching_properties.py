"""Property tests: matching feasibility and the 2-approximation guarantee."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    greedy_weighted_matching,
    matching_weight,
    max_weight_matching_with_budget,
)


@st.composite
def edge_lists(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=7))
    n_execs = draw(st.integers(min_value=1, max_value=7))
    edges = []
    for t in range(n_tasks):
        for e in range(n_execs):
            if draw(st.booleans()):
                weight = draw(st.floats(min_value=0.01, max_value=100.0))
                edges.append((f"t{t}", f"e{e}", weight))
    return edges


def is_matching(pairs, edges):
    edge_set = {(t, e) for t, e, _ in edges}
    tasks = list(pairs)
    execs = list(pairs.values())
    return (
        len(tasks) == len(set(tasks))
        and len(execs) == len(set(execs))
        and all((t, e) in edge_set for t, e in pairs.items())
    )


@given(edge_lists(), st.integers(min_value=0, max_value=10))
@settings(max_examples=200)
def test_greedy_produces_a_feasible_matching(edges, budget):
    m = greedy_weighted_matching(edges, budget=budget)
    assert is_matching(m, edges)
    assert len(m) <= budget


@given(edge_lists(), st.integers(min_value=0, max_value=10))
@settings(max_examples=100)
def test_optimal_produces_a_feasible_matching(edges, budget):
    m = max_weight_matching_with_budget(edges, budget=budget)
    assert is_matching(m, edges)
    assert len(m) <= budget


@given(edge_lists(), st.integers(min_value=1, max_value=10))
@settings(max_examples=100, deadline=None)
def test_greedy_is_a_half_approximation(edges, budget):
    """The paper's §IV-B claim: greedy heaviest-first ≥ ½ · optimum."""
    greedy = matching_weight(greedy_weighted_matching(edges, budget=budget), edges)
    optimal = matching_weight(
        max_weight_matching_with_budget(edges, budget=budget), edges
    )
    assert greedy >= 0.5 * optimal - 1e-6


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_optimal_dominates_greedy(edges):
    greedy = matching_weight(greedy_weighted_matching(edges), edges)
    optimal = matching_weight(max_weight_matching_with_budget(edges), edges)
    assert optimal >= greedy - 1e-6


@given(edge_lists(), st.integers(min_value=1, max_value=10))
@settings(max_examples=100, deadline=None)
def test_budget_monotonicity_of_optimum(edges, budget):
    """A larger budget can never lower the optimal matched weight."""
    small = matching_weight(
        max_weight_matching_with_budget(edges, budget=budget), edges
    )
    large = matching_weight(
        max_weight_matching_with_budget(edges, budget=budget + 1), edges
    )
    assert large >= small - 1e-6
