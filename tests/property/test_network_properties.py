"""Property tests: max-min fair rates respect capacities and starve nobody."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.bandwidth import LinkCapacities, maxmin_rates


@st.composite
def network_instances(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=8))
    caps = LinkCapacities()
    for i in range(n_nodes):
        caps.add_node(
            f"n{i}",
            uplink=draw(st.floats(min_value=0.1, max_value=1000.0)),
            downlink=draw(st.floats(min_value=0.1, max_value=1000.0)),
        )
    n_flows = draw(st.integers(min_value=1, max_value=20))
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        dst = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        if src == dst:
            dst = (dst + 1) % n_nodes
        flows.append((f"n{src}", f"n{dst}"))
    return flows, caps


@given(network_instances())
@settings(max_examples=200)
def test_capacities_never_exceeded(instance):
    flows, caps = instance
    rates = maxmin_rates(flows, caps)
    up = {n: 0.0 for n in caps.uplink}
    down = {n: 0.0 for n in caps.downlink}
    for (src, dst), rate in zip(flows, rates):
        up[src] += rate
        down[dst] += rate
    for node in up:
        assert up[node] <= caps.uplink[node] * (1 + 1e-9) + 1e-9
        assert down[node] <= caps.downlink[node] * (1 + 1e-9) + 1e-9


@given(network_instances())
@settings(max_examples=200)
def test_no_flow_starves(instance):
    flows, caps = instance
    rates = maxmin_rates(flows, caps)
    assert all(r > 0.0 for r in rates)


@given(network_instances())
@settings(max_examples=200)
def test_rates_are_maxmin_saturated(instance):
    """Every flow must cross at least one (nearly) saturated link — the
    defining property of a max-min fair allocation: no flow can be raised
    without lowering another."""
    flows, caps = instance
    rates = maxmin_rates(flows, caps)
    up = {n: 0.0 for n in caps.uplink}
    down = {n: 0.0 for n in caps.downlink}
    for (src, dst), rate in zip(flows, rates):
        up[src] += rate
        down[dst] += rate
    for (src, dst), rate in zip(flows, rates):
        up_slack = caps.uplink[src] - up[src]
        down_slack = caps.downlink[dst] - down[dst]
        assert min(up_slack, down_slack) <= 1e-6 * max(
            caps.uplink[src], caps.downlink[dst]
        )


@given(network_instances())
@settings(max_examples=100)
def test_determinism(instance):
    flows, caps = instance
    assert maxmin_rates(flows, caps) == maxmin_rates(flows, caps)


@given(network_instances())
@settings(max_examples=100)
def test_adding_a_flow_never_raises_the_minimum_rate(instance):
    """The first bottleneck's fair share — the global minimum — is monotone
    non-increasing in the flow set.  (Per-flow monotonicity is *false* for
    multi-link max-min: a newcomer can displace a bottleneck and speed up a
    third party, so we assert only on the minimum.)"""
    flows, caps = instance
    if len(flows) < 2:
        return
    base_min = min(maxmin_rates(flows[:-1], caps))
    full_min = min(maxmin_rates(flows, caps))
    assert full_min <= base_min * (1 + 1e-9) + 1e-9
