"""Property tests: sharded parallel execution == serial execution.

The fan-out runner's whole contract is that ``--jobs N`` is unobservable
in the artifacts.  Hypothesis drives the three places that contract could
crack: merge ordering under arbitrary completion orders, per-shard seed
derivation, and full grid/chaos sweeps compared cell-by-cell against the
serial loop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    Shard,
    merge_by_key,
    run_chaos_sweep,
    run_grid,
    run_sharded,
    shard_streams,
)
from repro.experiments.scenarios import chaos_sweep
from repro.experiments.sweeps import sweep

pytestmark = pytest.mark.parallel


@given(
    payloads=st.lists(st.integers(), min_size=1, max_size=24, unique=True),
    completion=st.randoms(use_true_random=False),
)
@settings(max_examples=50, deadline=None)
def test_merge_recovers_serial_order_for_any_completion_order(
    payloads, completion
):
    """However workers finish, the merge yields serial (key-sorted) order."""
    tagged = [((i,), p) for i, p in enumerate(payloads)]
    completion.shuffle(tagged)
    assert merge_by_key(tagged) == payloads


@given(
    keys=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        min_size=1, max_size=16, unique=True,
    ),
)
@settings(max_examples=25, deadline=None)
def test_inline_and_sharded_paths_agree(keys):
    """jobs=1 (inline) and the shard list sorted any way both reduce to the
    key-ordered serial result."""
    shards = [Shard(key=k, payload=sum(k)) for k in keys]
    expected = [sum(k) for k in sorted(keys)]
    assert run_sharded(lambda p: p, shards, jobs=1) == expected


@given(
    root_seed=st.integers(min_value=0, max_value=2**31 - 1),
    key=st.tuples(st.integers(0, 99), st.integers(0, 99)),
    decoys=st.lists(
        st.tuples(st.integers(0, 99), st.integers(0, 99)),
        max_size=4,
    ),
)
@settings(max_examples=25, deadline=None)
def test_shard_seed_derivation_is_a_pure_function(root_seed, key, decoys):
    """A shard's streams depend only on (root seed, key) — deriving other
    shards' streams first (as a busy pool does) changes nothing."""
    before = shard_streams(root_seed, key).get("draw").random()
    for decoy in decoys:
        shard_streams(root_seed, decoy).get("draw").random()
    assert shard_streams(root_seed, key).get("draw").random() == before


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    managers=st.permutations(["custody", "standalone"]),
)
@settings(max_examples=4, deadline=None)
def test_parallel_grid_equals_serial_sweep(seed, managers):
    base = ExperimentConfig(
        workload="wordcount", num_nodes=10, num_apps=2, jobs_per_app=2,
        seed=seed,
    )
    grid = {"manager": list(managers)}
    serial = sweep(base, grid, repeats=2)
    assert run_grid(base, grid, repeats=2, jobs=2) == serial


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=3, deadline=None)
def test_parallel_chaos_equals_serial_sweep(seed):
    base = ExperimentConfig(
        manager="custody", workload="wordcount", num_nodes=10, num_apps=2,
        jobs_per_app=2, seed=seed, detector_timeout=10.0,
    )
    serial = chaos_sweep(
        base, levels=[0, 1], managers=["custody", "yarn"], horizon=40.0
    )
    parallel = run_chaos_sweep(
        base, levels=[0, 1], managers=["custody", "yarn"], horizon=40.0,
        jobs=2,
    )
    assert parallel.cells == serial.cells
