"""Property: the incremental RateEngine equals a fresh full recompute.

For *any* interleaving of flow arrivals, departures, and recomputes —
including loopback flows and single-flow instances — the engine's rate
vector must match ``maxmin_rates`` run from scratch on the surviving
flows, within 1e-9.  (In practice the match is exact: the engine runs the
same kernel on each dirty component with insertion-ordered flows.)
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.bandwidth import (
    LinkCapacities,
    maxmin_rates,
    maxmin_rates_vectorized,
)
from repro.network.rate_engine import RateEngine

KERNELS = {"incremental": None, "vectorized": maxmin_rates_vectorized}


@st.composite
def churn_scripts(draw):
    """A capacity map plus a random add/remove/recompute op sequence."""
    n_nodes = draw(st.integers(min_value=1, max_value=6))
    caps = LinkCapacities()
    for i in range(n_nodes):
        caps.add_node(
            f"n{i}",
            uplink=draw(st.floats(min_value=0.1, max_value=1000.0)),
            downlink=draw(st.floats(min_value=0.1, max_value=1000.0)),
        )
    n_ops = draw(st.integers(min_value=1, max_value=30))
    ops = []
    live = 0
    for _ in range(n_ops):
        # Removal targets an index into the currently-live set; loopbacks
        # (src == dst) are legal and must come out with an infinite rate.
        kind = draw(
            st.sampled_from(["add", "add", "add", "remove", "recompute"])
            if live
            else st.just("add")
        )
        if kind == "add":
            src = draw(st.integers(min_value=0, max_value=n_nodes - 1))
            dst = draw(st.integers(min_value=0, max_value=n_nodes - 1))
            ops.append(("add", f"n{src}", f"n{dst}"))
            live += 1
        elif kind == "remove":
            ops.append(("remove", draw(st.integers(min_value=0, max_value=live - 1))))
            live -= 1
        else:
            ops.append(("recompute",))
    return caps, ops


def reference_vector(live_flows, caps):
    """Fresh full recompute over the surviving flows, loopbacks -> inf."""
    ids, endpoints = [], []
    expected = {}
    for fid, (src, dst) in live_flows:
        if src == dst:
            expected[fid] = math.inf
        else:
            ids.append(fid)
            endpoints.append((src, dst))
    for fid, rate in zip(ids, maxmin_rates(endpoints, caps)):
        expected[fid] = rate
    return expected


@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
@given(churn_scripts())
@settings(max_examples=200, deadline=None)
def test_engine_matches_fresh_recompute_after_any_churn(kernel_name, script):
    caps, ops = script
    engine = RateEngine(caps, kernel=KERNELS[kernel_name], engine_label=kernel_name)
    live = []  # [(fid, (src, dst))] in insertion order
    next_id = 0
    for op in ops:
        if op[0] == "add":
            _, src, dst = op
            engine.add_flow(next_id, src, dst)
            live.append((next_id, (src, dst)))
            next_id += 1
        elif op[0] == "remove":
            fid, _ = live.pop(op[1])
            engine.remove_flow(fid)
        else:
            engine.recompute()

    got = engine.rates()
    expected = reference_vector(live, caps)
    assert set(got) == set(expected)
    for fid, want in expected.items():
        if math.isinf(want):
            assert math.isinf(got[fid]), fid
        else:
            assert abs(got[fid] - want) <= 1e-9 * max(1.0, abs(want)), fid


@given(churn_scripts())
@settings(max_examples=100, deadline=None)
def test_recompute_placement_is_irrelevant(script):
    """Recomputing after every op or only once at the end gives the same
    final vector — batching same-instant changes is semantics-preserving."""
    caps, ops = script
    eager = RateEngine(caps)
    lazy = RateEngine(caps)
    live_eager, live_lazy = [], []
    next_id = 0
    for op in ops:
        if op[0] == "add":
            _, src, dst = op
            eager.add_flow(next_id, src, dst)
            lazy.add_flow(next_id, src, dst)
            live_eager.append(next_id)
            live_lazy.append(next_id)
            next_id += 1
        elif op[0] == "remove":
            eager.remove_flow(live_eager.pop(op[1]))
            lazy.remove_flow(live_lazy.pop(op[1]))
        else:
            eager.recompute()  # lazy deliberately skips interior recomputes
    assert eager.rates() == lazy.rates()


@given(churn_scripts())
@settings(max_examples=200, deadline=None)
def test_vectorized_kernel_is_bitwise_identical(script):
    """The numpy-bookkeeping kernel equals the reference *exactly* — same
    freeze order, same float operands — for any flow population including
    loopbacks and repeated endpoints."""
    caps, ops = script
    flows = [(op[1], op[2]) for op in ops if op[0] == "add"]
    assert maxmin_rates_vectorized(flows, caps) == maxmin_rates(flows, caps)


@given(
    st.floats(min_value=0.1, max_value=1000.0),
    st.floats(min_value=0.1, max_value=1000.0),
)
def test_single_flow_gets_its_bottleneck(up, down):
    caps = LinkCapacities()
    caps.add_node("a", uplink=up, downlink=1e12)
    caps.add_node("b", uplink=1e12, downlink=down)
    engine = RateEngine(caps)
    engine.add_flow("only", "a", "b")
    assert engine.rates() == {"only": maxmin_rates([("a", "b")], caps)[0]}


@given(st.integers(min_value=1, max_value=5))
def test_pure_loopback_population(n):
    caps = LinkCapacities()
    caps.add_node("a", uplink=0.5, downlink=0.5)
    engine = RateEngine(caps)
    for i in range(n):
        engine.add_flow(i, "a", "a")
    rates = engine.rates()
    assert len(rates) == n and all(math.isinf(r) for r in rates.values())
