"""Property tests: robustness-layer invariants under arbitrary inputs.

Three families, one per mechanism:

* The circuit breaker is a strict state machine — CLOSED is only ever
  reached *through* HALF_OPEN, every edge chains onto the previous one,
  and the read-only predicate never mutates.
* Retry budgets conserve tokens — every request is either spent or
  denied, and spending can never exceed capacity plus refill.
* The whole stack preserves liveness — with every knob enabled, bounded
  gray fault plans (flaps, correlated crashes, slowdowns) never wedge a
  run, and the run-level counters respect the same invariants.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import (
    CorrelatedFailure,
    FaultPlan,
    LinkFlap,
    NodeFailure,
    NodeSlowdown,
)
from repro.scheduling.robustness import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryBudget,
)

pytestmark = pytest.mark.robustness

#: the complete set of legal breaker edges — note no (OPEN, CLOSED)
LEGAL_EDGES = {
    (CLOSED, OPEN),
    (OPEN, HALF_OPEN),
    (HALF_OPEN, CLOSED),
    (HALF_OPEN, OPEN),
}

breaker_ops = st.lists(
    st.tuples(
        st.sampled_from(["fail", "ok", "launch", "peek"]),
        st.floats(min_value=0.0, max_value=30.0),
    ),
    max_size=40,
)


@given(
    ops=breaker_ops,
    threshold=st.integers(min_value=1, max_value=4),
    window=st.floats(min_value=1.0, max_value=60.0),
    cooldown=st.floats(min_value=1.0, max_value=60.0),
)
@settings(max_examples=200, deadline=None)
def test_breaker_never_skips_half_open(ops, threshold, window, cooldown):
    edges = []
    breaker = CircuitBreaker(
        threshold=threshold,
        window=window,
        cooldown=cooldown,
        on_transition=lambda prev, state: edges.append((prev, state)),
    )
    now = 0.0
    for op, dt in ops:
        now += dt
        if op == "fail":
            breaker.on_failure(now)
        elif op == "ok":
            breaker.on_success(now)
        elif op == "launch":
            breaker.allows_launch(now)
        else:
            state = breaker.state
            probes = breaker.probes
            breaker.would_allow(now)
            assert breaker.state == state  # the filter predicate is pure
            assert breaker.probes == probes
    for edge in edges:
        assert edge in LEGAL_EDGES
    # Edges chain: recovery cannot teleport, so a close is always preceded
    # by the half-open probe admission.
    for (_, landed), (left, _) in zip(edges, edges[1:]):
        assert left == landed
    assert breaker.closes <= breaker.probes
    assert breaker.state in (CLOSED, OPEN, HALF_OPEN)


@given(
    capacity=st.integers(min_value=1, max_value=10),
    refill=st.floats(min_value=0.0, max_value=2.0),
    gaps=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=50),
)
@settings(max_examples=200, deadline=None)
def test_budget_conserves_tokens(capacity, refill, gaps):
    budget = RetryBudget(capacity, refill)
    now = 0.0
    for dt in gaps:
        now += dt
        assert 0.0 <= budget.tokens(now) <= capacity
        budget.try_spend(now)
    assert budget.spent + budget.denied == len(gaps)
    # Spending is bounded by the initial allowance plus everything the
    # refill could possibly have returned over the whole horizon.
    assert budget.spent <= capacity + refill * now + 1e-6
    assert 0.0 <= budget.tokens(now) <= capacity


NUM_NODES = 10

ROBUST = dict(
    manager="custody",
    workload="pagerank",
    num_nodes=NUM_NODES,
    num_apps=2,
    jobs_per_app=2,
    detector_timeout=15.0,
    detector_mode="adaptive",
    circuit_breaker=True,
    blacklist_timeout=10.0,
    hedging=True,
    retry_jitter=True,
    retry_budget=32,
    retry_refill=0.0,  # hard budget: per-job retries <= 32, checkable below
    admission_control=True,
)


@st.composite
def gray_plans(draw):
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from(["slow", "node", "flap", "correlated"]))
        at = draw(st.floats(min_value=0.0, max_value=60.0))
        node = f"worker-{draw(st.integers(0, NUM_NODES - 1)):03d}"
        if kind == "slow":
            events.append(
                NodeSlowdown(
                    at=at, node_id=node,
                    duration=draw(st.floats(min_value=1.0, max_value=100.0)),
                    factor=draw(st.floats(min_value=1.0, max_value=8.0)),
                )
            )
        elif kind == "node":
            events.append(
                NodeFailure(
                    at=at, node_id=node,
                    restart_delay=draw(st.floats(min_value=1.0, max_value=60.0)),
                )
            )
        elif kind == "flap":
            events.append(
                LinkFlap(
                    at=at, node_id=node,
                    duration=draw(st.floats(min_value=2.0, max_value=40.0)),
                    period=draw(st.floats(min_value=2.0, max_value=10.0)),
                    down_fraction=draw(st.floats(min_value=0.1, max_value=0.9)),
                )
            )
        else:
            members = draw(
                st.sets(st.integers(0, NUM_NODES - 1), min_size=2, max_size=4)
            )
            events.append(
                CorrelatedFailure(
                    at=at,
                    node_ids=tuple(f"worker-{i:03d}" for i in sorted(members)),
                    restart_delay=draw(st.floats(min_value=1.0, max_value=40.0)),
                )
            )
    return FaultPlan(events)


@given(plan=gray_plans(), seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_liveness_and_counter_invariants_under_gray_faults(plan, seed):
    result = run_experiment(
        ExperimentConfig(seed=seed, **ROBUST), fault_plan=plan
    )
    assert result.metrics.unfinished_jobs == 0

    faults = result.faults
    if faults is None:
        return  # empty plan: no injector, nothing to account
    assert faults.breaker_closes <= faults.breaker_probes
    assert faults.hedges_won + faults.hedges_lost <= faults.hedges_launched

    injector = result.fault_injector
    assert injector is not None and injector.manager is not None
    for driver in injector.manager.drivers.values():
        # Hard budget (refill 0): attempts are conserved — per job, the
        # admitted retries plus the tokens still in the bucket equal the
        # capacity, and no task ever exceeds its attempt ceiling.
        for budget in driver._job_budgets.values():
            assert budget.spent + budget.tokens(driver.sim.now) == 32
        for count in driver._failure_counts.values():
            assert count <= driver.max_task_attempts
