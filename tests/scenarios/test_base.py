"""Scenario framework mechanics: checks, registry, suite orchestration."""

import pytest

from repro.common.errors import ConfigurationError
from repro.scenarios.base import (
    Check,
    ScenarioProfile,
    ScenarioResult,
    SuiteReport,
    ValidationScenario,
    all_scenarios,
    get_scenario,
    run_suite,
)


class TestCheck:
    def test_within_passes_inside_band(self):
        assert Check.within("x", 1.04, 1.0, 0.05).passed
        assert not Check.within("x", 1.06, 1.0, 0.05).passed

    def test_within_is_symmetric(self):
        assert Check.within("x", 0.96, 1.0, 0.05).passed
        assert not Check.within("x", 0.94, 1.0, 0.05).passed

    def test_within_zero_expected_never_divides(self):
        check = Check.within("x", 0.1, 0.0, 0.05)
        assert not check.passed  # rel error is infinite

    def test_within_exact_zero_match(self):
        assert Check.within("x", 0.0, 0.0, 0.05).passed

    def test_at_most_with_slack(self):
        assert Check.at_most("x", 1.04, 1.0, 0.05).passed
        assert not Check.at_most("x", 1.06, 1.0, 0.05).passed

    def test_at_least_with_slack(self):
        assert Check.at_least("x", 0.96, 1.0, 0.05).passed
        assert not Check.at_least("x", 0.94, 1.0, 0.05).passed

    def test_that_boolean(self):
        assert Check.that("x", True).passed
        assert not Check.that("x", False).passed

    def test_as_dict_round_trips_fields(self):
        d = Check.within("x", 1.0, 1.0, 0.05).as_dict()
        assert d["name"] == "x" and d["passed"] is True


class TestProfile:
    def test_scaled_picks_by_mode(self):
        assert ScenarioProfile(smoke=True).scaled(100, 10) == 10
        assert ScenarioProfile(smoke=False).scaled(100, 10) == 100

    def test_defaults(self):
        p = ScenarioProfile()
        assert p.seed == 0
        assert p.network_engine == "incremental"
        assert p.alloc_engine == "incremental"


class TestResult:
    def test_empty_checks_is_not_a_pass(self):
        result = ScenarioResult(name="x", title="x", profile=ScenarioProfile())
        assert not result.passed

    def test_any_failing_check_fails(self):
        result = ScenarioResult(name="x", title="x", profile=ScenarioProfile())
        result.checks.append(Check.that("a", True))
        result.checks.append(Check.that("b", False))
        assert not result.passed


class TestRegistry:
    def test_all_expected_scenarios_registered(self):
        names = set(all_scenarios())
        assert {
            "mm1", "mmc", "priority", "littles_law", "locality",
            "trace_replay", "diurnal", "elastic_churn",
        } <= names

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("nope")

    def test_engine_sensitivity_flags(self):
        assert get_scenario("littles_law").engine_sensitive
        assert get_scenario("trace_replay").engine_sensitive
        assert get_scenario("elastic_churn").engine_sensitive
        assert not get_scenario("mm1").engine_sensitive


class TestRunSuite:
    class _Fake(ValidationScenario):
        name = "fake"
        title = "fake"
        engine_sensitive = True

        def build(self, profile, result):
            result.checks.append(Check.that("ok", True))
            result.params["engines"] = (
                profile.network_engine, profile.alloc_engine
            )

    def test_engine_variants_fan_out(self, monkeypatch):
        import repro.scenarios.base as base

        monkeypatch.setattr(base, "_REGISTRY", {"fake": self._Fake()})
        report = run_suite(
            profile=ScenarioProfile(smoke=True),
            engine_variants=[("incremental", "incremental"),
                             ("reference", "reference")],
        )
        engines = [r.params["engines"] for r in report.results]
        assert engines == [("incremental", "incremental"),
                           ("reference", "reference")]
        assert report.passed

    def test_named_subset(self, monkeypatch):
        import repro.scenarios.base as base

        monkeypatch.setattr(base, "_REGISTRY", {"fake": self._Fake()})
        report = run_suite(["fake"], ScenarioProfile())
        assert [r.name for r in report.results] == ["fake"]

    def test_report_as_dict_shape(self, monkeypatch):
        import repro.scenarios.base as base

        monkeypatch.setattr(base, "_REGISTRY", {"fake": self._Fake()})
        payload = run_suite(["fake"], ScenarioProfile()).as_dict()
        assert payload["passed"] is True
        assert payload["scenarios"][0]["name"] == "fake"
        assert payload["scenarios"][0]["checks"][0]["name"] == "ok"

    def test_empty_report_is_failure(self):
        assert not SuiteReport().passed
