"""The recovery validation scenario as a pytest-selectable gate.

Runs the ``recovery`` scenario in smoke profile under both engine
stacks, exactly as the ``recovery-smoke`` CI lane and ``python -m repro
validate`` do, and asserts every closed-form bound holds.
"""

import pytest

from repro.scenarios.base import ScenarioProfile, get_scenario

pytestmark = [pytest.mark.scenarios, pytest.mark.recovery]

ENGINE_VARIANTS = (("incremental", "incremental"), ("reference", "reference"))


def describe(result) -> str:
    lines = [f"{result.name} [{result.profile.network_engine}/"
             f"{result.profile.alloc_engine}]"]
    for c in result.checks:
        verdict = "pass" if c.passed else "FAIL"
        lines.append(f"  {verdict} {c.name}: measured={c.measured:.6g} "
                     f"expected={c.expected:.6g} tol={c.tolerance:.3g}")
    return "\n".join(lines)


@pytest.mark.parametrize("engines", ENGINE_VARIANTS, ids=lambda e: "/".join(e))
def test_recovery_scenario_smoke(engines):
    net, alloc = engines
    profile = ScenarioProfile(
        smoke=True, seed=0, network_engine=net, alloc_engine=alloc
    )
    result = get_scenario("recovery").run(profile)
    assert result.passed, describe(result)


def test_recovery_scenario_is_engine_sensitive():
    # The validate CLI relies on this flag to repeat the scenario under
    # both engine stacks; losing it would silently halve the coverage.
    assert get_scenario("recovery").engine_sensitive
