"""``repro validate``: argument surface, report artifact, exit codes."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.command == "validate"
        assert not args.smoke
        assert args.scenario_names is None
        assert args.out == "VALIDATION.json"

    def test_scenario_is_repeatable(self):
        args = build_parser().parse_args(
            ["validate", "--scenario", "mm1", "--scenario", "mmc"]
        )
        assert args.scenario_names == ["mm1", "mmc"]

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "--network-engine", "magic"])


class TestCommand:
    def test_list_scenarios(self, capsys):
        assert main(["validate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "mm1" in out and "littles_law" in out
        assert "engine-sensitive" in out

    def test_single_scenario_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = main(
            ["validate", "--smoke", "--scenario", "locality",
             "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["passed"] is True
        assert payload["scenarios"][0]["name"] == "locality"
        assert payload["scenarios"][0]["checks"]
        assert "validate passed" in capsys.readouterr().out

    def test_skip_artifact_with_empty_out(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["validate", "--smoke", "--scenario", "diurnal",
                     "--out", ""]) == 0
        assert not (tmp_path / "VALIDATION.json").exists()

    def test_unknown_scenario_errors(self, tmp_path):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown scenario"):
            main(["validate", "--scenario", "nope", "--out",
                  str(tmp_path / "r.json")])

    @pytest.mark.scenarios
    def test_smoke_gate_runs_all_engine_variants(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = main(
            ["validate", "--smoke", "--scenario", "littles_law",
             "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        engines = {
            (s["profile"]["network_engine"], s["profile"]["alloc_engine"])
            for s in payload["scenarios"]
        }
        assert engines == {("incremental", "incremental"),
                           ("reference", "reference"),
                           ("vectorized", "vectorized")}
