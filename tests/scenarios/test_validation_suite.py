"""The validation suite itself, as pytest-selectable regression tests.

``-m scenarios`` selects exactly these (the CI ``validate-smoke`` gate runs
them alongside ``python -m repro validate --smoke``).  Each test runs one
registered scenario in smoke profile and asserts every check lands inside
its tolerance band; failures print the measured-vs-expected table so a
regression is diagnosable straight from the CI log.
"""

import pytest

from repro.scenarios.base import ScenarioProfile, get_scenario, run_suite

pytestmark = pytest.mark.scenarios

ENGINE_VARIANTS = (("incremental", "incremental"), ("reference", "reference"))

PURE = ("mm1", "mmc", "priority", "locality", "diurnal")
ENGINE_SENSITIVE = ("littles_law", "trace_replay", "elastic_churn")


def describe(result) -> str:
    lines = [f"{result.name} [{result.profile.network_engine}/"
             f"{result.profile.alloc_engine}]"]
    for c in result.checks:
        verdict = "pass" if c.passed else "FAIL"
        lines.append(f"  {verdict} {c.name}: measured={c.measured:.6g} "
                     f"expected={c.expected:.6g} tol={c.tolerance:.3g}")
    return "\n".join(lines)


@pytest.mark.parametrize("name", PURE)
def test_scenario_smoke(name):
    result = get_scenario(name).run(ScenarioProfile(smoke=True, seed=0))
    assert result.passed, describe(result)


@pytest.mark.parametrize("engines", ENGINE_VARIANTS, ids=lambda e: "/".join(e))
@pytest.mark.parametrize("name", ENGINE_SENSITIVE)
def test_engine_sensitive_scenario_smoke(name, engines):
    net, alloc = engines
    profile = ScenarioProfile(
        smoke=True, seed=0, network_engine=net, alloc_engine=alloc
    )
    result = get_scenario(name).run(profile)
    assert result.passed, describe(result)


@pytest.mark.slow
def test_full_suite_both_variants():
    """The complete gate, exactly as ``repro validate --smoke`` runs it."""
    report = run_suite(
        profile=ScenarioProfile(smoke=True, seed=0),
        engine_variants=list(ENGINE_VARIANTS),
    )
    assert report.results, "suite ran nothing"
    failing = [r for r in report.results if not r.passed]
    assert not failing, "\n\n".join(describe(r) for r in failing)
