"""ApplicationDriver: dispatch, execution, stage barriers, executor churn."""

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.errors import AllocationError
from repro.common.units import BlockSpec
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import PlacementPolicy
from repro.network.fabric import NetworkFabric
from repro.scheduling.driver import ApplicationDriver
from repro.scheduling.policies import DelayScheduler, FifoScheduler
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


class OneBlockPerNode(PlacementPolicy):
    """Block k lives only on worker k — fully controlled locality."""

    def choose_nodes(self, block, count, node_ids, topology, rng):
        return [node_ids[block.index % len(node_ids)]]


class Harness:
    """Four 1-executor workers with 1 B/s NICs and instant disks."""

    def __init__(self, slots=1):
        self.sim = Simulation()
        self.fabric = NetworkFabric(self.sim)
        self.cluster = Cluster(
            ClusterConfig(
                num_nodes=4,
                cores_per_node=max(2, slots),
                executors_per_node=1,
                executor_slots=slots,
                disk_bandwidth=1e12,
                uplink=1.0,
                downlink=1.0,
                nodes_per_rack=4,
            ),
            fabric=self.fabric,
        )
        self.hdfs = HDFS(
            self.cluster,
            block_spec=BlockSpec(size=1.0, replication=1),
            placement=OneBlockPerNode(),
        )
        self.entry = self.hdfs.ingest("/data/f", 4.0)  # blocks 0..3 on workers 0..3
        self.app = Application("app-0")
        self.timeline = Timeline(clock=lambda: self.sim.now)
        self.driver = ApplicationDriver(
            self.sim,
            self.app,
            self.cluster,
            self.hdfs,
            self.fabric,
            DelayScheduler(wait=0.4),
            timeline=self.timeline,
        )

    def give_executor(self, index):
        executor = self.cluster.executors[index]
        executor.allocate(self.app.app_id)
        self.driver.attach_executor(executor)
        return executor

    def input_job(self, job_id, block_indices, cpu=0.5):
        tasks = [
            Task(
                f"{job_id}/t{i}", job_id=job_id, app_id="app-0", stage_index=0,
                kind=TaskKind.INPUT, cpu_time=cpu, block=self.entry.blocks[b],
            )
            for i, b in enumerate(block_indices)
        ]
        return Job(job_id, "app-0", [Stage(0, tasks)])

    def two_stage_job(self, job_id, block_indices, shuffle_bytes=1.0, cpu=0.5):
        job = self.input_job(job_id, block_indices, cpu=cpu)
        shuffles = [
            Task(
                f"{job_id}/s1/t{i}", job_id=job_id, app_id="app-0", stage_index=1,
                kind=TaskKind.SHUFFLE, cpu_time=cpu, shuffle_bytes=shuffle_bytes,
            )
            for i in range(2)
        ]
        return Job(job_id, "app-0", job.stages + [Stage(1, shuffles)])


class TestBasicExecution:
    def test_local_task_reads_from_disk(self):
        h = Harness()
        h.give_executor(0)
        job = h.input_job("j", [0])
        h.driver.submit_job(job)
        h.sim.run()
        task = job.input_tasks[0]
        assert task.was_local is True
        assert task.finished_at == pytest.approx(0.5, abs=1e-6)
        assert job.completion_time == pytest.approx(0.5, abs=1e-6)

    def test_remote_task_fetches_over_network(self):
        h = Harness()
        h.give_executor(0)
        job = h.input_job("j", [1])  # block on worker 1, executor on worker 0
        h.driver.submit_job(job)
        h.sim.run()
        task = job.input_tasks[0]
        assert task.was_local is False
        # 0.4 s locality wait + 1.0 s transfer + 0.5 s cpu
        assert task.finished_at == pytest.approx(1.9, abs=1e-6)
        assert task.read_time == pytest.approx(1.0, abs=1e-6)

    def test_scheduler_delay_recorded(self):
        h = Harness()
        h.give_executor(0)
        job = h.input_job("j", [1])
        h.driver.submit_job(job)
        h.sim.run()
        assert job.input_tasks[0].scheduler_delay == pytest.approx(0.4, abs=1e-6)

    def test_multislot_executor_runs_tasks_concurrently(self):
        h = Harness(slots=2)
        h.give_executor(0)
        job = h.input_job("j", [0, 0])  # both tasks local on worker 0
        h.driver.submit_job(job)
        h.sim.run()
        assert job.completion_time == pytest.approx(0.5, abs=1e-6)

    def test_single_slot_serialises_tasks(self):
        h = Harness(slots=1)
        h.give_executor(0)
        job = h.input_job("j", [0, 0])
        h.driver.submit_job(job)
        h.sim.run()
        assert job.completion_time == pytest.approx(1.0, abs=1e-6)


class TestStageBarriers:
    def test_shuffle_stage_starts_after_input_barrier(self):
        h = Harness()
        h.give_executor(0)
        h.give_executor(1)
        job = h.two_stage_job("j", [0, 1], shuffle_bytes=0.0)
        h.driver.submit_job(job)
        h.sim.run()
        input_finish = max(t.finished_at for t in job.stages[0].tasks)
        shuffle_start = min(t.started_at for t in job.stages[1].tasks)
        assert shuffle_start >= input_finish

    def test_job_finishes_after_last_stage(self):
        h = Harness()
        h.give_executor(0)
        h.give_executor(1)
        job = h.two_stage_job("j", [0, 1], shuffle_bytes=0.0)
        h.driver.submit_job(job)
        h.sim.run()
        assert job.finished
        assert job.finished_at == pytest.approx(
            max(t.finished_at for t in job.stages[1].tasks)
        )

    def test_shuffle_reads_cross_network_when_remote(self):
        h = Harness(slots=2)
        h.give_executor(0)  # both map tasks run here (local, 2 slots)
        h.give_executor(2)  # holds no map output
        job = h.two_stage_job("j", [0, 0], shuffle_bytes=1.0)
        h.driver.submit_job(job)
        h.sim.run()
        # Map output lives on worker 0 only; one reduce task lands on
        # worker 2 and must fetch over the network (1 B at 1 B/s = 1 s)
        # while the worker-0 reduce streams from local disk (~0 s).
        reads = sorted(t.read_time for t in job.stages[1].tasks)
        assert reads[0] == pytest.approx(0.0, abs=1e-6)
        assert reads[1] == pytest.approx(1.0, abs=1e-6)


class TestExecutorChurn:
    def test_attach_requires_ownership(self):
        h = Harness()
        executor = h.cluster.executors[0]
        with pytest.raises(AllocationError):
            h.driver.attach_executor(executor)

    def test_detach_busy_executor_rejected(self):
        h = Harness()
        executor = h.give_executor(0)
        job = h.input_job("j", [0], cpu=10.0)
        h.driver.submit_job(job)
        h.sim.run(until=1.0)
        with pytest.raises(AllocationError):
            h.driver.detach_executor(executor)

    def test_granting_mid_run_dispatches_waiting_tasks(self):
        h = Harness()
        h.give_executor(0)
        job = h.input_job("j", [0, 1])
        h.driver.submit_job(job)
        h.sim.schedule(0.1, lambda: h.give_executor(1))
        h.sim.run()
        t1 = job.input_tasks[1]
        assert t1.was_local is True  # picked up by the late local executor
        assert t1.node_id == "worker-001"

    def test_executor_count_and_nodes(self):
        h = Harness()
        h.give_executor(0)
        h.give_executor(2)
        assert h.driver.executor_count == 2
        assert h.driver.owned_nodes() == ["worker-000", "worker-002"]


class TestOfferInterface:
    def test_offer_accepted_for_local_task(self):
        h = Harness()
        job = h.input_job("j", [2])
        # No executors yet: submit queues the tasks.
        h.driver.submit_job(job)
        executor2 = h.cluster.executors[2]
        assert h.driver.consider_offer(executor2)

    def test_offer_rejected_for_nonlocal_node_within_wait(self):
        h = Harness()
        job = h.input_job("j", [2])
        h.driver.submit_job(job)
        executor0 = h.cluster.executors[0]
        assert not h.driver.consider_offer(executor0)

    def test_offer_rejected_without_work(self):
        h = Harness()
        assert not h.driver.consider_offer(h.cluster.executors[0])


class TestBookkeeping:
    def test_outstanding_tasks(self):
        h = Harness()
        job = h.input_job("j", [0, 1])
        h.driver.submit_job(job)
        assert h.driver.outstanding_tasks == 2

    def test_timeline_records_lifecycle(self):
        h = Harness()
        h.give_executor(0)
        h.driver.submit_job(h.input_job("j", [0]))
        h.sim.run()
        kinds = [r.kind for r in h.timeline]
        assert kinds == ["job.submit", "task.start", "task.finish", "job.finish"]

    def test_delay_wakeup_launches_task_without_new_events(self):
        h = Harness()
        h.give_executor(0)
        job = h.input_job("j", [3])  # never local on worker 0
        h.driver.submit_job(job)
        h.sim.run()
        assert job.finished  # wakeup timer released the task after 0.4 s
