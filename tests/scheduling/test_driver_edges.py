"""Driver edge cases around executor churn and wakeups."""

import pytest

from repro.common.errors import AllocationError

from tests.scheduling.test_driver import Harness


def test_wakeup_after_all_executors_revoked_is_harmless():
    """A delay wakeup armed while slots existed must not crash after the
    manager revoked every executor."""
    h = Harness()
    executor = h.give_executor(0)
    job = h.input_job("j", [3])  # non-local: waits for the 0.4 s expiry
    h.driver.submit_job(job)
    # Revoke the idle executor before the wakeup fires.
    h.driver.detach_executor(executor)
    executor.release()
    h.sim.run()
    assert not job.finished  # no executors: the task stays queued
    assert h.driver.outstanding_tasks == 1


def test_regrant_after_revocation_resumes_work():
    h = Harness()
    executor = h.give_executor(0)
    job = h.input_job("j", [3])
    h.driver.submit_job(job)
    h.driver.detach_executor(executor)
    executor.release()
    h.sim.run()
    # Grant a fresh executor later: the queued task runs to completion.
    h.give_executor(3)  # local to block 3
    h.sim.run()
    assert job.finished
    assert job.input_tasks[0].was_local is True


def test_detach_unowned_executor_is_noop():
    h = Harness()
    executor = h.cluster.executors[1]
    h.driver.detach_executor(executor)  # never attached: silently ignored
    assert h.driver.executor_count == 0


def test_attach_foreign_owned_executor_rejected():
    h = Harness()
    executor = h.cluster.executors[0]
    executor.allocate("somebody-else")
    with pytest.raises(AllocationError):
        h.driver.attach_executor(executor)


def test_submit_multiple_jobs_fifo_order():
    h = Harness()
    h.give_executor(0)
    j1 = h.input_job("j1", [0], cpu=1.0)
    j2 = h.input_job("j2", [0], cpu=1.0)
    h.driver.submit_job(j1)
    h.driver.submit_job(j2)
    h.sim.run()
    assert j1.finished_at < j2.finished_at


def test_executor_failure_without_attempts():
    """Failing an owned-but-idle executor requeues nothing."""
    h = Harness()
    executor = h.give_executor(0)
    assert h.driver.on_executor_failure(executor) == 0
    assert h.driver.executor_count == 0  # still detached


def test_executor_failure_requeues_running_task():
    h = Harness()
    executor = h.give_executor(0)
    job = h.input_job("j", [0], cpu=100.0)
    h.driver.submit_job(job)
    h.sim.run(until=1.0)
    assert h.driver.running_count == 1
    requeued = h.driver.on_executor_failure(executor)
    assert requeued == 1
    assert h.driver.runnable_tasks[0] is job.input_tasks[0]
    assert job.input_tasks[0].started_at is None
    # Slot was freed synchronously.
    assert not executor.running_tasks
