"""Driver failure handling: retry/backoff, blacklisting, transfer cleanup."""

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.units import BlockSpec
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import PlacementPolicy
from repro.network.fabric import NetworkFabric
from repro.scheduling.driver import ApplicationDriver
from repro.scheduling.policies import FifoScheduler
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind

pytestmark = pytest.mark.faults


class OneBlockPerNode(PlacementPolicy):
    """Block k lives only on worker k — fully controlled locality."""

    def choose_nodes(self, block, count, node_ids, topology, rng):
        return [node_ids[block.index % len(node_ids)]]


class Harness:
    """Four 1-executor workers with 1 B/s NICs, tunable retry knobs."""

    def __init__(self, **driver_kwargs):
        self.sim = Simulation()
        self.fabric = NetworkFabric(self.sim)
        self.cluster = Cluster(
            ClusterConfig(
                num_nodes=4,
                cores_per_node=2,
                executors_per_node=1,
                executor_slots=1,
                disk_bandwidth=1e12,
                uplink=1.0,
                downlink=1.0,
                nodes_per_rack=4,
            ),
            fabric=self.fabric,
        )
        self.hdfs = HDFS(
            self.cluster,
            block_spec=BlockSpec(size=1.0, replication=1),
            placement=OneBlockPerNode(),
        )
        self.entry = self.hdfs.ingest("/data/f", 4.0)
        self.app = Application("app-0")
        self.timeline = Timeline(clock=lambda: self.sim.now)
        self.driver = ApplicationDriver(
            self.sim,
            self.app,
            self.cluster,
            self.hdfs,
            self.fabric,
            FifoScheduler(),
            timeline=self.timeline,
            **driver_kwargs,
        )

    def give_executor(self, index):
        executor = self.cluster.executors[index]
        executor.allocate(self.app.app_id)
        self.driver.attach_executor(executor)
        return executor

    def input_job(self, job_id, block_indices, cpu=0.5):
        tasks = [
            Task(
                f"{job_id}/t{i}", job_id=job_id, app_id="app-0", stage_index=0,
                kind=TaskKind.INPUT, cpu_time=cpu, block=self.entry.blocks[b],
            )
            for i, b in enumerate(block_indices)
        ]
        return Job(job_id, "app-0", [Stage(0, tasks)])


class TestKnobValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_task_attempts=0),
            dict(retry_backoff=-1.0),
            dict(blacklist_threshold=0),
            dict(blacklist_window=0.0),
            dict(blacklist_timeout=-5.0),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Harness(**kwargs)


class TestRetryBackoff:
    def test_first_failure_requeues_synchronously(self):
        h = Harness()
        job = h.input_job("J", [0])
        task = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        assert h.driver._handle_task_failure(task, "worker-001", "test")
        assert task in h.driver.runnable_tasks

    def test_second_failure_backs_off_exponentially(self):
        h = Harness(retry_backoff=2.0)
        job = h.input_job("J", [0])
        task = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        h.driver._handle_task_failure(task, "worker-001", "test")
        h.driver._runnable.remove(task)
        # Second failure: requeue only after retry_backoff * 2^0 = 2 s.
        assert not h.driver._handle_task_failure(task, "worker-001", "test")
        assert task not in h.driver.runnable_tasks
        h.sim.run(until=h.sim.now + 1.9)
        assert task not in h.driver.runnable_tasks
        h.sim.run(until=h.sim.now + 0.2)
        assert task in h.driver.runnable_tasks

    def test_attempts_exhausted_abandons_task(self):
        h = Harness(max_task_attempts=2, retry_backoff=0.0)
        job = h.input_job("J", [0, 1])
        task = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        h.driver._handle_task_failure(task, "worker-001", "test")
        h.driver._runnable.remove(task)
        h.driver._handle_task_failure(task, "worker-001", "test")
        assert task.cancelled
        assert h.driver.abandoned_tasks == 1
        abandons = [r for r in h.timeline.of_kind("task.abandon")]
        assert abandons and abandons[0].get("reason") == "attempts-exhausted"

    def test_data_loss_abandons_immediately(self):
        h = Harness()
        job = h.input_job("J", [0])
        task = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        # Wipe the only replica of block 0.
        block_id = task.block.block_id
        self_node = "worker-000"
        h.hdfs.datanodes[self_node].evict(block_id)
        h.hdfs.namenode.remove_replica(block_id, self_node)
        assert not h.driver._handle_task_failure(task, self_node, "executor-lost")
        assert task.cancelled
        assert h.driver.data_loss_tasks == 1

    def test_abandoned_stage_still_completes_job(self):
        h = Harness(max_task_attempts=1)
        h.give_executor(1)  # remote executor only
        job = h.input_job("J", [0, 1])
        task = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        # First failure with a budget of 1 abandons outright; the stage
        # barrier still falls when the surviving task finishes.
        h.driver._handle_task_failure(task, "worker-003", "test")
        assert task.cancelled
        h.sim.run()
        assert job.finished


class TestBlacklist:
    def test_threshold_blacklists_node(self):
        h = Harness(blacklist_threshold=2, blacklist_window=60.0,
                    blacklist_timeout=30.0)
        job = h.input_job("J", [0, 1])
        t0, t1 = job.stages[0].tasks
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        h.driver._handle_task_failure(t0, "worker-002", "test")
        assert not h.driver._blacklisted("worker-002")
        h.driver._handle_task_failure(t1, "worker-002", "test")
        assert h.driver._blacklisted("worker-002")
        assert h.driver.blacklist_events == 1
        records = [r for r in h.timeline.of_kind("node.blacklist")]
        assert records and records[0].subject == "worker-002"

    def test_blacklist_expires(self):
        h = Harness(blacklist_threshold=1, blacklist_timeout=10.0)
        job = h.input_job("J", [0, 1])
        task = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        h.driver._handle_task_failure(task, "worker-002", "test")
        assert h.driver._blacklisted("worker-002")
        h.sim.run(until=15.0)
        assert not h.driver._blacklisted("worker-002")

    def test_dispatch_skips_blacklisted_executor(self):
        h = Harness(blacklist_threshold=1, blacklist_timeout=5.0)
        executor = h.give_executor(3)
        job = h.input_job("J", [0])
        task = job.stages[0].tasks[0]
        # Blacklist the only executor's node before submitting.
        h.driver._note_node_failure(executor.node_id)
        h.driver.submit_job(job)
        h.sim.run(until=1.0)
        assert task.started_at is None  # nothing eligible
        h.sim.run()
        assert job.finished  # picked up after the blacklist decayed


class TestTransferCleanup:
    def test_executor_failure_aborts_active_transfers(self):
        # Remote read in flight (1 B/s → 1 s): killing the executor must
        # free the fabric bandwidth immediately.
        h = Harness()
        executor = h.give_executor(3)
        h.driver.submit_job(h.input_job("J", [0]))  # block 0 on worker-000
        h.sim.run(until=0.5)
        assert h.fabric.active_transfers == 1
        executor.healthy = False
        requeued = h.driver.on_executor_failure(executor)
        assert requeued == 1
        assert h.fabric.active_transfers == 0

    def test_same_instant_start_and_kill(self):
        # The attempt process may not have run yet when the executor dies;
        # the kill sweep must still leave no dangling transfers or tasks.
        h = Harness()
        executor = h.give_executor(3)
        h.driver.submit_job(h.input_job("J", [0]))
        executor.healthy = False
        h.driver.on_executor_failure(executor)
        assert h.fabric.active_transfers == 0
        assert not executor.running_tasks
        h.sim.run(until=5.0)
        assert h.fabric.active_transfers == 0
