"""Driver robustness: breakers on the launch path, budgets, jitter, hedges."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.units import BlockSpec
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import PlacementPolicy
from repro.network.fabric import NetworkFabric
from repro.scheduling.driver import ApplicationDriver
from repro.scheduling.policies import FifoScheduler
from repro.scheduling.robustness import CLOSED, OPEN
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind

pytestmark = [pytest.mark.faults, pytest.mark.robustness]


class OneBlockPerNode(PlacementPolicy):
    """Block k lives only on worker k — fully controlled locality."""

    def choose_nodes(self, block, count, node_ids, topology, rng):
        return [node_ids[block.index % len(node_ids)]]


class Harness:
    """Four 1-executor workers with 1 B/s NICs, tunable robustness knobs."""

    def __init__(self, **driver_kwargs):
        self.sim = Simulation()
        self.fabric = NetworkFabric(self.sim)
        self.cluster = Cluster(
            ClusterConfig(
                num_nodes=4,
                cores_per_node=2,
                executors_per_node=1,
                executor_slots=1,
                disk_bandwidth=1e12,
                uplink=1.0,
                downlink=1.0,
                nodes_per_rack=4,
            ),
            fabric=self.fabric,
        )
        self.hdfs = HDFS(
            self.cluster,
            block_spec=BlockSpec(size=1.0, replication=1),
            placement=OneBlockPerNode(),
        )
        self.entry = self.hdfs.ingest("/data/f", 4.0)
        self.app = Application("app-0")
        self.timeline = Timeline(clock=lambda: self.sim.now)
        self.driver = ApplicationDriver(
            self.sim,
            self.app,
            self.cluster,
            self.hdfs,
            self.fabric,
            FifoScheduler(),
            timeline=self.timeline,
            **driver_kwargs,
        )

    def give_executor(self, index):
        executor = self.cluster.executors[index]
        executor.allocate(self.app.app_id)
        self.driver.attach_executor(executor)
        return executor

    def input_job(self, job_id, block_indices, cpu=0.5):
        tasks = [
            Task(
                f"{job_id}/t{i}", job_id=job_id, app_id="app-0", stage_index=0,
                kind=TaskKind.INPUT, cpu_time=c if isinstance(cpu, list) else cpu,
                block=self.entry.blocks[b],
            )
            for i, (b, c) in enumerate(
                zip(block_indices, cpu if isinstance(cpu, list) else [cpu] * len(block_indices))
            )
        ]
        return Job(job_id, "app-0", [Stage(0, tasks)])


class TestBreakerOnLaunchPath:
    def test_breaker_subsumes_blacklist(self):
        h = Harness(circuit_breaker=True, blacklist_threshold=2,
                    blacklist_window=60.0, blacklist_timeout=10.0)
        job = h.input_job("J", [0, 1])
        t0, t1 = job.stages[0].tasks
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        h.driver._handle_task_failure(t0, "worker-002", "test")
        assert not h.driver._blacklisted("worker-002")
        h.driver._handle_task_failure(t1, "worker-002", "test")
        # The breaker answers the exclusion question the blacklist used to.
        assert h.driver._blacklisted("worker-002")
        assert h.driver.breakers.breaker("worker-002").state == OPEN
        # Opens feed the legacy counter so exclusion metrics stay comparable.
        assert h.driver.blacklist_events == 1
        assert not h.driver._blacklist  # the timed map itself stays unused
        # Past cooldown an OPEN breaker stops excluding: the next launch
        # would be its half-open probe.
        h.sim.run(until=15.0)
        assert not h.driver._blacklisted("worker-002")

    def test_transitions_hit_the_timeline(self):
        h = Harness(circuit_breaker=True, blacklist_threshold=1,
                    blacklist_timeout=5.0)
        h.driver._note_node_failure("worker-002")
        records = list(h.timeline.of_kind("node.breaker"))
        assert records and records[0].subject == "worker-002"
        assert records[0].get("state") == OPEN

    def test_probe_launch_closes_breaker_end_to_end(self):
        # Mirrors the legacy blacklist-expiry test: the node's only executor
        # is excluded, the cooldown elapses, the probe launch succeeds and
        # the breaker re-closes.
        h = Harness(circuit_breaker=True, blacklist_threshold=1,
                    blacklist_timeout=5.0)
        executor = h.give_executor(3)
        h.driver._note_node_failure(executor.node_id)
        job = h.input_job("J", [0])
        task = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=1.0)
        assert task.started_at is None  # breaker OPEN: nothing eligible
        h.sim.run()
        assert job.finished
        breaker = h.driver.breakers.breaker(executor.node_id)
        assert breaker.state == CLOSED
        assert breaker.probes == 1
        assert breaker.closes == 1


class TestRetryBudget:
    def test_exhausted_budget_abandons_instead_of_retrying(self):
        h = Harness(retry_budget=1, retry_backoff=0.0, max_task_attempts=10)
        job = h.input_job("J", [0, 1])
        t0 = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        assert h.driver._handle_task_failure(t0, "worker-001", "test")
        h.driver._runnable.remove(t0)
        assert not h.driver._handle_task_failure(t0, "worker-001", "test")
        assert t0.cancelled
        assert h.driver.retries_denied == 1
        abandons = list(h.timeline.of_kind("task.abandon"))
        assert abandons and abandons[0].get("reason") == "retry-budget-exhausted"

    def test_budget_is_per_job(self):
        h = Harness(retry_budget=1, retry_backoff=0.0)
        j1 = h.input_job("J1", [0])
        j2 = h.input_job("J2", [1])
        h.driver.submit_job(j1)
        h.driver.submit_job(j2)
        h.sim.run(until=0.01)
        # Each job owns its bucket: both first retries are admitted.
        assert h.driver._handle_task_failure(j1.stages[0].tasks[0], "worker-002", "t")
        assert h.driver._handle_task_failure(j2.stages[0].tasks[0], "worker-002", "t")
        assert h.driver.retries_denied == 0

    def test_refill_restores_retry_capacity(self):
        h = Harness(retry_budget=1, retry_refill=0.5, retry_backoff=0.0)
        job = h.input_job("J", [0, 1])
        t0, t1 = job.stages[0].tasks
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        h.driver._handle_task_failure(t0, "worker-002", "test")  # drains the token
        h.sim.run(until=2.5)  # 2.5 s x 0.5/s refills one token
        h.driver._handle_task_failure(t1, "worker-002", "test")
        assert h.driver.retries_denied == 0
        assert not t1.cancelled


class TestRetryJitter:
    def test_backoff_draws_full_jitter(self):
        rng = np.random.default_rng(7)
        expected = float(np.random.default_rng(7).uniform(0.0, 4.0))
        assert 0.0 < expected < 4.0
        h = Harness(retry_backoff=4.0, retry_jitter_rng=rng)
        job = h.input_job("J", [0])
        task = job.stages[0].tasks[0]
        h.driver.submit_job(job)
        h.sim.run(until=0.01)
        h.driver._handle_task_failure(task, "worker-001", "test")
        h.driver._runnable.remove(task)
        h.driver._handle_task_failure(task, "worker-001", "test")
        # The requeue lands at the jittered delay, not the deterministic cap.
        h.sim.run(until=0.01 + expected - 1e-6)
        assert task not in h.driver.runnable_tasks
        h.sim.run(until=0.01 + expected + 1e-6)
        assert task in h.driver.runnable_tasks


class TestHedging:
    def _slow_tail_setup(self):
        """Three short finished tasks then one long straggler on worker-000."""
        h = Harness(hedging=True, circuit_breaker=True, blacklist_threshold=3,
                    blacklist_window=60.0, blacklist_timeout=30.0,
                    hedge_quantile=0.95, hedge_multiplier=1.5)
        h.give_executor(0)
        job = h.input_job("J", [0, 0, 0, 0], cpu=[0.5, 0.5, 0.5, 50.0])
        h.driver.submit_job(job)
        # t0-t2 run back to back (local, 0.5 s each); t3 starts at 1.5 s.
        h.sim.run(until=3.0)
        straggler = job.stages[0].tasks[3]
        assert straggler.started_at is not None and not straggler.finished
        return h, job, straggler

    def _trip(self, h, node_id):
        for _ in range(3):
            h.driver._note_node_failure(node_id)
        assert h.driver.breakers.breaker(node_id).state == OPEN

    def test_hedge_backs_up_straggler_on_suspected_node(self):
        h, job, straggler = self._slow_tail_setup()
        self._trip(h, "worker-000")
        h.give_executor(3)  # free slot on a healthy node → hedge fires
        h.sim.run(until=3.5)
        assert h.driver.hedges_launched == 1
        records = list(h.timeline.of_kind("task.hedge"))
        assert records and records[0].subject == straggler.task_id
        assert records[0].get("primary") == "worker-000"
        assert records[0].get("hedge") == "worker-003"  # never the same node

    def test_hedge_wins_when_primary_dies(self):
        h, job, straggler = self._slow_tail_setup()
        self._trip(h, "worker-000")
        h.give_executor(3)
        h.sim.run(until=3.5)
        assert h.driver.hedges_launched == 1
        executor = h.cluster.executors[0]
        executor.healthy = False
        h.driver.on_executor_failure(executor)
        h.sim.run()
        assert job.finished
        assert h.driver.hedges_won == 1
        assert h.driver.hedges_lost == 0

    def test_primary_win_kills_the_hedge(self):
        h, job, straggler = self._slow_tail_setup()
        self._trip(h, "worker-000")
        h.give_executor(3)
        h.sim.run()
        # Primary started 1.5 s earlier and the hedge pays a remote read:
        # the original attempt finishes first and the backup is discarded.
        assert job.finished
        assert h.driver.hedges_launched == 1
        assert h.driver.hedges_lost == 1
        assert h.driver.hedges_won == 0

    def test_no_hedge_without_suspicion(self):
        h, job, straggler = self._slow_tail_setup()
        h.give_executor(3)  # healthy primary: a free slot alone is not enough
        h.sim.run()
        assert job.finished
        assert h.driver.hedges_launched == 0
