"""HintedDelayScheduler: Custody's z-assignment suggestions, enforced."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.hdfs.blocks import Block
from repro.hdfs.namenode import FileEntry, NameNode
from repro.scheduling.policies import HintedDelayScheduler
from repro.workload.task import Task, TaskKind


@pytest.fixture
def namenode():
    nn = NameNode()
    blocks = [Block(f"b-{i}", path="/f", index=i, size=1.0) for i in range(2)]
    nn.register_file(FileEntry(path="/f", size=2.0, blocks=blocks))
    nn.add_replica("b-0", "n0")
    nn.add_replica("b-1", "n0")  # both blocks on n0: contention for its slots
    return nn


def input_task(tid, block_index, submitted_at=0.0):
    t = Task(
        tid, job_id="j", app_id="a", stage_index=0, kind=TaskKind.INPUT,
        cpu_time=1.0,
        block=Block(f"b-{block_index}", path="/f", index=block_index, size=1.0),
    )
    t.submitted_at = submitted_at
    return t


class TestHintedPicks:
    def test_hinted_task_wins_on_its_executor(self, namenode):
        sched = HintedDelayScheduler(wait=3.0)
        t0, t1 = input_task("t0", 0), input_task("t1", 1)
        # FIFO/locality would pick t0 first; the hint says t1 belongs to e1.
        sched.set_hints({"t1": "e1"})
        picked = sched.pick_task([t0, t1], "n0", 0.0, namenode, executor_id="e1")
        assert picked is t1

    def test_reservation_blocks_other_executors(self, namenode):
        sched = HintedDelayScheduler(wait=3.0)
        t0 = input_task("t0", 0)
        sched.set_hints({"t0": "e9"})
        # e1 on the same (local!) node must leave t0 for e9 within the wait.
        assert sched.pick_task([t0], "n0", 0.0, namenode, executor_id="e1") is None

    def test_reservation_lapses_after_wait(self, namenode):
        sched = HintedDelayScheduler(wait=3.0)
        t0 = input_task("t0", 0, submitted_at=0.0)
        sched.set_hints({"t0": "e9"})
        picked = sched.pick_task([t0], "n0", 3.5, namenode, executor_id="e1")
        assert picked is t0

    def test_unhinted_tasks_follow_delay_rules(self, namenode):
        sched = HintedDelayScheduler(wait=3.0)
        t0 = input_task("t0", 0)
        assert sched.pick_task([t0], "n0", 0.0, namenode, executor_id="e1") is t0

    def test_without_executor_id_behaves_like_delay(self, namenode):
        sched = HintedDelayScheduler(wait=3.0)
        t0 = input_task("t0", 0)
        sched.set_hints({"t0": "e9"})
        # No executor identity: the reservation still protects the task.
        assert sched.pick_task([t0], "n0", 0.0, namenode) is None

    def test_hints_merge(self, namenode):
        sched = HintedDelayScheduler(wait=3.0)
        sched.set_hints({"a": "e1"})
        sched.set_hints({"b": "e2"})
        assert sched.hints == {"a": "e1", "b": "e2"}


class TestEndToEnd:
    BASE = dict(
        manager="custody", workload="wordcount", num_nodes=15,
        num_apps=2, jobs_per_app=3, seed=6,
    )

    def test_enforced_hints_run_clean(self):
        result = run_experiment(
            ExperimentConfig(custody_enforce_hints=True, **self.BASE)
        )
        assert result.metrics.unfinished_jobs == 0

    def test_hints_do_not_hurt_locality(self):
        plain = run_experiment(ExperimentConfig(**self.BASE))
        hinted = run_experiment(
            ExperimentConfig(custody_enforce_hints=True, **self.BASE)
        )
        # The paper's design choice: delay scheduling already realises the
        # hinted placements, so enforcing them must not regress anything.
        assert hinted.metrics.locality_mean >= plain.metrics.locality_mean - 0.02
