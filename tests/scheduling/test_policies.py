"""Task scheduling policies: delay, locality-first, FIFO."""

import pytest

from repro.hdfs.blocks import Block
from repro.hdfs.namenode import FileEntry, NameNode
from repro.scheduling.policies import (
    DelayScheduler,
    FifoScheduler,
    LocalityFirstScheduler,
)
from repro.workload.task import Task, TaskKind


@pytest.fixture
def namenode():
    nn = NameNode()
    blocks = [Block(f"b-{i}", path="/f", index=i, size=1.0) for i in range(3)]
    nn.register_file(FileEntry(path="/f", size=3.0, blocks=blocks))
    nn.add_replica("b-0", "n0")
    nn.add_replica("b-1", "n1")
    nn.add_replica("b-2", "n0")
    nn.add_replica("b-2", "n2")
    return nn


def input_task(tid, block_index, submitted_at=0.0):
    t = Task(
        tid, job_id="j", app_id="a", stage_index=0, kind=TaskKind.INPUT,
        cpu_time=1.0,
        block=Block(f"b-{block_index}", path="/f", index=block_index, size=1.0),
    )
    t.submitted_at = submitted_at
    return t


def shuffle_task(tid, submitted_at=0.0):
    t = Task(
        tid, job_id="j", app_id="a", stage_index=1, kind=TaskKind.SHUFFLE,
        cpu_time=1.0, shuffle_bytes=1.0,
    )
    t.submitted_at = submitted_at
    return t


class TestDelayScheduler:
    def test_prefers_local_task(self, namenode):
        sched = DelayScheduler(wait=3.0)
        tasks = [input_task("t0", 1), input_task("t1", 0)]  # t1 local on n0
        assert sched.pick_task(tasks, "n0", now=0.0, namenode=namenode) is tasks[1]

    def test_withholds_nonlocal_before_wait_expiry(self, namenode):
        sched = DelayScheduler(wait=3.0)
        tasks = [input_task("t0", 1)]  # local only on n1
        assert sched.pick_task(tasks, "n0", now=1.0, namenode=namenode) is None

    def test_releases_nonlocal_after_wait(self, namenode):
        sched = DelayScheduler(wait=3.0)
        tasks = [input_task("t0", 1, submitted_at=0.0)]
        assert sched.pick_task(tasks, "n0", now=3.0, namenode=namenode) is tasks[0]

    def test_local_beats_expired_nonlocal(self, namenode):
        sched = DelayScheduler(wait=1.0)
        expired = input_task("t0", 1, submitted_at=0.0)
        local = input_task("t1", 0, submitted_at=5.0)
        assert (
            sched.pick_task([expired, local], "n0", now=10.0, namenode=namenode)
            is local
        )

    def test_shuffle_tasks_run_anywhere_immediately(self, namenode):
        sched = DelayScheduler(wait=3.0)
        tasks = [shuffle_task("t0")]
        assert sched.pick_task(tasks, "n2", now=0.0, namenode=namenode) is tasks[0]

    def test_fifo_among_local_tasks(self, namenode):
        sched = DelayScheduler(wait=3.0)
        t_old = input_task("t0", 0, submitted_at=0.0)
        t_new = input_task("t1", 2, submitted_at=1.0)  # also local on n0
        assert (
            sched.pick_task([t_old, t_new], "n0", now=2.0, namenode=namenode)
            is t_old
        )

    def test_next_wakeup_is_earliest_expiry(self, namenode):
        sched = DelayScheduler(wait=3.0)
        tasks = [
            input_task("t0", 1, submitted_at=0.0),
            input_task("t1", 1, submitted_at=2.0),
        ]
        assert sched.next_wakeup(tasks, now=1.0) == pytest.approx(3.0)

    def test_next_wakeup_none_when_all_expired(self, namenode):
        sched = DelayScheduler(wait=1.0)
        tasks = [input_task("t0", 1, submitted_at=0.0)]
        assert sched.next_wakeup(tasks, now=5.0) is None

    def test_zero_wait_behaves_like_fifo(self, namenode):
        sched = DelayScheduler(wait=0.0)
        tasks = [input_task("t0", 1)]
        assert sched.pick_task(tasks, "n0", now=0.0, namenode=namenode) is tasks[0]

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            DelayScheduler(wait=-1.0)

    def test_accepts_offer_mirrors_pick(self, namenode):
        sched = DelayScheduler(wait=3.0)
        tasks = [input_task("t0", 1)]
        assert not sched.accepts_offer(tasks, "n0", now=0.0, namenode=namenode)
        assert sched.accepts_offer(tasks, "n1", now=0.0, namenode=namenode)


class TestLocalityFirstScheduler:
    def test_never_places_nonlocal_input(self, namenode):
        sched = LocalityFirstScheduler()
        tasks = [input_task("t0", 1)]
        assert sched.pick_task(tasks, "n0", now=99.0, namenode=namenode) is None

    def test_places_local_input(self, namenode):
        sched = LocalityFirstScheduler()
        tasks = [input_task("t0", 0)]
        assert sched.pick_task(tasks, "n0", now=0.0, namenode=namenode) is tasks[0]

    def test_shuffle_always_eligible(self, namenode):
        sched = LocalityFirstScheduler()
        tasks = [shuffle_task("t0")]
        assert sched.pick_task(tasks, "n2", now=0.0, namenode=namenode) is tasks[0]


class TestFifoScheduler:
    def test_takes_head_of_queue(self, namenode):
        sched = FifoScheduler()
        tasks = [input_task("t0", 1), input_task("t1", 0)]
        assert sched.pick_task(tasks, "n0", now=0.0, namenode=namenode) is tasks[0]

    def test_empty_queue(self, namenode):
        assert FifoScheduler().pick_task([], "n0", now=0.0, namenode=namenode) is None
