"""The node → rack → any delay-scheduling ladder and rack accounting."""

import pytest

from repro.cluster.topology import Topology
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.hdfs.blocks import Block
from repro.hdfs.namenode import FileEntry, NameNode
from repro.scheduling.policies import DelayScheduler
from repro.workload.task import Task, TaskKind


@pytest.fixture
def topo():
    t = Topology()
    for i in range(4):
        t.add_node(f"n{i}", f"rack-{i // 2}")  # n0,n1 | n2,n3
    return t


@pytest.fixture
def namenode():
    nn = NameNode()
    blocks = [Block(f"b-{i}", path="/f", index=i, size=1.0) for i in range(2)]
    nn.register_file(FileEntry(path="/f", size=2.0, blocks=blocks))
    nn.add_replica("b-0", "n0")  # rack-0
    nn.add_replica("b-1", "n2")  # rack-1
    return nn


def input_task(tid, block_index, submitted_at=0.0):
    t = Task(
        tid, job_id="j", app_id="a", stage_index=0, kind=TaskKind.INPUT,
        cpu_time=1.0,
        block=Block(f"b-{block_index}", path="/f", index=block_index, size=1.0),
    )
    t.submitted_at = submitted_at
    return t


class TestLadder:
    def test_node_local_always_preferred(self, topo, namenode):
        sched = DelayScheduler(wait=3.0, rack_wait=3.0, topology=topo)
        tasks = [input_task("t0", 0)]
        assert sched.pick_task(tasks, "n0", 0.0, namenode) is tasks[0]

    def test_rack_local_blocked_before_node_wait(self, topo, namenode):
        sched = DelayScheduler(wait=3.0, rack_wait=3.0, topology=topo)
        tasks = [input_task("t0", 0)]  # replica on n0 (rack-0)
        # n1 is rack-local but the node wait has not expired.
        assert sched.pick_task(tasks, "n1", 1.0, namenode) is None

    def test_rack_local_allowed_after_node_wait(self, topo, namenode):
        sched = DelayScheduler(wait=3.0, rack_wait=3.0, topology=topo)
        tasks = [input_task("t0", 0)]
        assert sched.pick_task(tasks, "n1", 3.0, namenode) is tasks[0]

    def test_off_rack_blocked_until_full_ladder(self, topo, namenode):
        sched = DelayScheduler(wait=3.0, rack_wait=3.0, topology=topo)
        tasks = [input_task("t0", 0)]  # rack-0 only
        # n2 is in rack-1: neither node- nor rack-local.
        assert sched.pick_task(tasks, "n2", 4.0, namenode) is None
        assert sched.pick_task(tasks, "n2", 6.0, namenode) is tasks[0]

    def test_rack_preferred_over_any(self, topo, namenode):
        sched = DelayScheduler(wait=1.0, rack_wait=1.0, topology=topo)
        off_rack = input_task("t0", 1, submitted_at=0.0)  # rack-1 data
        rack_local = input_task("t1", 0, submitted_at=5.0)  # rack-0 data
        # On n1 (rack-0) at t=6: t0 cleared the full ladder (any), t1 cleared
        # only the node wait (rack-local on n1).  Rack beats any.
        picked = sched.pick_task([off_rack, rack_local], "n1", 6.0, namenode)
        assert picked is rack_local

    def test_next_wakeup_includes_both_rungs(self, topo, namenode):
        sched = DelayScheduler(wait=2.0, rack_wait=3.0, topology=topo)
        tasks = [input_task("t0", 0, submitted_at=0.0)]
        assert sched.next_wakeup(tasks, now=1.0) == pytest.approx(2.0)
        assert sched.next_wakeup(tasks, now=2.5) == pytest.approx(5.0)
        assert sched.next_wakeup(tasks, now=6.0) is None

    def test_rack_wait_requires_topology(self):
        with pytest.raises(ValueError):
            DelayScheduler(wait=1.0, rack_wait=1.0)

    def test_negative_rack_wait_rejected(self, topo):
        with pytest.raises(ValueError):
            DelayScheduler(wait=1.0, rack_wait=-1.0, topology=topo)


class TestEndToEnd:
    BASE = dict(
        manager="standalone", workload="wordcount", num_nodes=20,
        num_apps=2, jobs_per_app=3, seed=12, nodes_per_rack=5, delay_wait=1.0,
    )

    def test_locality_levels_recorded(self):
        result = run_experiment(ExperimentConfig(**self.BASE))
        levels = result.metrics.locality_levels
        assert levels
        assert sum(levels.values()) == pytest.approx(1.0)

    def test_ladder_moves_any_to_rack(self):
        flat = run_experiment(ExperimentConfig(**self.BASE))
        laddered = run_experiment(ExperimentConfig(rack_wait=2.0, **self.BASE))
        assert laddered.metrics.locality_levels.get("any", 0.0) <= (
            flat.metrics.locality_levels.get("any", 0.0) + 1e-9
        )

    def test_all_jobs_finish_with_ladder(self):
        result = run_experiment(ExperimentConfig(rack_wait=2.0, **self.BASE))
        assert result.metrics.unfinished_jobs == 0
