"""RetryBudget / CircuitBreaker state-machine unit tests."""

import pytest

from repro.common.errors import ConfigurationError
from repro.scheduling.robustness import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitBreakerBoard,
    RetryBudget,
)

pytestmark = pytest.mark.robustness


class TestRetryBudget:
    def test_hard_budget_spend_and_deny(self):
        budget = RetryBudget(capacity=2)
        assert budget.try_spend(0.0)
        assert budget.try_spend(1.0)
        assert not budget.try_spend(2.0)
        assert budget.spent == 2
        assert budget.denied == 1

    def test_refill_restores_tokens(self):
        budget = RetryBudget(capacity=2, refill_rate=0.5)
        assert budget.try_spend(0.0)
        assert budget.try_spend(0.0)
        assert not budget.try_spend(0.0)
        # 2 seconds x 0.5/s = 1 token back.
        assert budget.try_spend(2.0)
        assert not budget.try_spend(2.0)

    def test_refill_caps_at_capacity(self):
        budget = RetryBudget(capacity=3, refill_rate=10.0)
        assert budget.tokens(100.0) == 3.0

    def test_tokens_is_read_only(self):
        budget = RetryBudget(capacity=1, refill_rate=1.0)
        assert budget.try_spend(0.0)
        before = budget.tokens(0.5)
        assert budget.tokens(0.5) == before  # repeated reads don't drain

    @pytest.mark.parametrize("kwargs", [{"capacity": 0}, {"refill_rate": -1.0}])
    def test_invalid(self, kwargs):
        base = dict(capacity=3, refill_rate=0.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            RetryBudget(**base)


class TestCircuitBreaker:
    def _tripped(self, **kwargs) -> CircuitBreaker:
        breaker = CircuitBreaker(threshold=3, window=60.0, cooldown=10.0, **kwargs)
        for t in (0.0, 1.0, 2.0):
            breaker.on_failure(t)
        assert breaker.state == OPEN
        return breaker

    def test_trips_after_threshold_in_window(self):
        breaker = CircuitBreaker(threshold=3, window=60.0, cooldown=10.0)
        breaker.on_failure(0.0)
        breaker.on_failure(1.0)
        assert breaker.state == CLOSED
        breaker.on_failure(2.0)
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_old_failures_age_out(self):
        breaker = CircuitBreaker(threshold=3, window=5.0, cooldown=10.0)
        breaker.on_failure(0.0)
        breaker.on_failure(1.0)
        breaker.on_failure(30.0)  # the first two are long expired
        assert breaker.state == CLOSED

    def test_open_denies_until_cooldown(self):
        breaker = self._tripped()
        assert not breaker.allows_launch(5.0)
        assert not breaker.would_allow(5.0)
        assert breaker.next_probe_time() == 12.0  # opened at 2.0 + cooldown 10

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self._tripped()
        assert breaker.allows_launch(13.0)  # the probe
        assert breaker.state == HALF_OPEN
        assert breaker.probes == 1
        assert not breaker.allows_launch(13.5)  # second launch denied
        assert not breaker.would_allow(13.5)

    def test_probe_success_closes(self):
        breaker = self._tripped()
        assert breaker.allows_launch(13.0)
        breaker.on_success(14.0)
        assert breaker.state == CLOSED
        assert breaker.closes == 1
        # A closed breaker needs a fresh threshold of failures to re-trip.
        breaker.on_failure(15.0)
        assert breaker.state == CLOSED

    def test_probe_failure_reopens(self):
        breaker = self._tripped()
        assert breaker.allows_launch(13.0)
        breaker.on_failure(14.0)
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert breaker.next_probe_time() == 24.0

    def test_would_allow_never_mutates(self):
        breaker = self._tripped()
        assert breaker.would_allow(13.0)  # cooldown elapsed
        assert breaker.state == OPEN  # ...but no transition happened
        assert breaker.probes == 0

    def test_success_when_closed_is_noop(self):
        breaker = CircuitBreaker()
        breaker.on_success(1.0)
        assert breaker.state == CLOSED
        assert breaker.closes == 0

    def test_transition_hook_sees_every_edge(self):
        seen = []
        breaker = self._tripped(on_transition=lambda p, s: seen.append((p, s)))
        assert breaker.allows_launch(13.0)
        breaker.on_success(14.0)
        assert seen == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    @pytest.mark.parametrize(
        "kwargs", [{"threshold": 0}, {"window": 0.0}, {"cooldown": 0.0}]
    )
    def test_invalid(self, kwargs):
        base = dict(threshold=3, window=60.0, cooldown=60.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(**base)


class TestCircuitBreakerBoard:
    def test_lazy_per_node(self):
        board = CircuitBreakerBoard(threshold=1, window=10.0, cooldown=5.0)
        a = board.breaker("node-a")
        assert board.breaker("node-a") is a
        assert board.breaker("node-b") is not a

    def test_totals_and_open_count(self):
        board = CircuitBreakerBoard(threshold=1, window=10.0, cooldown=5.0)
        board.breaker("a").on_failure(0.0)
        board.breaker("b").on_failure(0.0)
        assert board.open_count() == 2
        assert board.totals() == {"opens": 2, "probes": 0, "closes": 0}
        assert board.breaker("a").allows_launch(6.0)
        board.breaker("a").on_success(7.0)
        assert board.open_count() == 1
        assert board.totals() == {"opens": 2, "probes": 1, "closes": 1}

    def test_transition_hook_carries_node_id(self):
        seen = []
        board = CircuitBreakerBoard(
            threshold=1, window=10.0, cooldown=5.0,
            on_transition=lambda node, p, s: seen.append((node, p, s)),
        )
        board.breaker("node-x").on_failure(0.0)
        assert seen == [("node-x", CLOSED, OPEN)]
