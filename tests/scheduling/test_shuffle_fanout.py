"""Parallel shuffle fetch (configurable fan-out)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

from tests.scheduling.test_driver import Harness


class TestFanoutSources:
    def test_fanout_one_single_source(self):
        h = Harness(slots=2)
        h.give_executor(0)
        h.give_executor(2)
        job = h.two_stage_job("j", [0, 0], shuffle_bytes=1.0)
        h.driver.shuffle_fanout = 1
        h.driver.submit_job(job)
        h.sim.run()
        # One aggregate flow per reduce (see test_driver for the layout).
        reads = sorted(t.read_time for t in job.stages[1].tasks)
        assert reads[1] == pytest.approx(1.0, abs=1e-6)

    def test_fanout_splits_bytes_across_sources(self):
        h = Harness(slots=2)
        # Maps run on two nodes -> two distinct upstream sources.
        h.give_executor(0)
        h.give_executor(1)
        job = h.two_stage_job("j", [0, 1], shuffle_bytes=1.0)
        h.driver.shuffle_fanout = 2
        h.driver.submit_job(job)
        h.sim.run()
        # Each reduce fetches 0.5 B from each of w0/w1; the local half reads
        # instantly, the remote half crosses the 1 B/s NIC: 0.5 s (two
        # concurrent 0.5 B flows on distinct src->dst pairs do not contend).
        reads = [t.read_time for t in job.stages[1].tasks]
        for r in reads:
            assert r == pytest.approx(0.5, abs=1e-6)

    def test_fanout_capped_by_distinct_upstreams(self):
        h = Harness(slots=2)
        h.give_executor(0)  # all maps on one node
        job = h.two_stage_job("j", [0, 0], shuffle_bytes=1.0)
        h.driver.shuffle_fanout = 8
        h.driver.submit_job(job)
        h.sim.run()
        assert job.finished

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            h = Harness()
            from repro.scheduling.driver import ApplicationDriver
            from repro.scheduling.policies import DelayScheduler

            ApplicationDriver(
                h.sim, h.app, h.cluster, h.hdfs, h.fabric,
                DelayScheduler(), shuffle_fanout=0,
            )


class TestEndToEnd:
    BASE = dict(
        manager="custody", workload="sort", num_nodes=15,
        num_apps=2, jobs_per_app=3, seed=4,
    )

    def test_config_validation(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentConfig(shuffle_fanout=0, **self.BASE)

    @pytest.mark.parametrize("fanout", [1, 2, 4])
    def test_all_jobs_finish(self, fanout):
        result = run_experiment(
            ExperimentConfig(shuffle_fanout=fanout, **self.BASE)
        )
        assert result.metrics.unfinished_jobs == 0

    def test_determinism(self):
        config = ExperimentConfig(shuffle_fanout=3, **self.BASE)
        assert run_experiment(config).metrics == run_experiment(config).metrics
