"""Speculative execution: straggler clones, winner-takes-all, cleanup."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import FaultPlan, NodeSlowdown

BASE = dict(
    manager="standalone", workload="sort", num_nodes=12, num_apps=2,
    jobs_per_app=3, seed=9,
)


def straggler_plan(factor=8.0, nodes=3):
    return FaultPlan(
        [
            NodeSlowdown(at=0.0, node_id=f"worker-{i:03d}", duration=1e6, factor=factor)
            for i in range(nodes)
        ]
    )


def run(speculation, plan=None, **overrides):
    config = ExperimentConfig(**{**BASE, **overrides, "speculation": speculation})
    return run_experiment(config, fault_plan=plan)


class TestSpeculationEffect:
    def test_speculation_reduces_jct_under_stragglers(self):
        plan = straggler_plan()
        without = run(False, straggler_plan())
        with_spec = run(True, straggler_plan())
        assert with_spec.metrics.avg_jct < without.metrics.avg_jct
        assert with_spec.speculative_launches > 0

    def test_no_stragglers_few_clones(self):
        result = run(True)
        # Homogeneous tasks: speculation should stay nearly silent.
        total_tasks = sum(len(j.all_tasks) for a in result.apps for j in a.jobs)
        assert result.speculative_launches <= 0.2 * total_tasks

    def test_wins_bounded_by_launches(self):
        result = run(True, straggler_plan())
        assert 0 <= result.speculative_wins <= result.speculative_launches

    def test_all_jobs_finish_with_speculation(self):
        result = run(True, straggler_plan())
        assert result.metrics.unfinished_jobs == 0

    def test_every_task_finishes_exactly_once(self):
        result = run(True, straggler_plan(), timeline_enabled=True)
        finishes = result.timeline.of_kind("task.finish")
        ids = [r.subject for r in finishes]
        assert len(ids) == len(set(ids))
        total_tasks = sum(len(j.all_tasks) for a in result.apps for j in a.jobs)
        assert len(ids) == total_tasks

    def test_task_records_consistent_after_speculation(self):
        result = run(True, straggler_plan())
        for app in result.apps:
            for job in app.jobs:
                for task in job.all_tasks:
                    assert task.finished_at is not None
                    assert task.executor_id is not None
                    assert task.started_at <= task.finished_at

    def test_determinism_with_speculation(self):
        r1 = run(True, straggler_plan())
        r2 = run(True, straggler_plan())
        assert r1.metrics == r2.metrics
        assert r1.speculative_launches == r2.speculative_launches


class TestSpeculationConfig:
    def test_invalid_quantile_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentConfig(speculation_quantile=0.0)

    def test_invalid_multiplier_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentConfig(speculation_multiplier=0.5)

    def test_higher_multiplier_launches_fewer_clones(self):
        eager = run(True, straggler_plan(), speculation_multiplier=1.2)
        lazy = run(True, straggler_plan(), speculation_multiplier=4.0)
        assert lazy.speculative_launches <= eager.speculative_launches
