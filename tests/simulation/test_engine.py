"""Simulation engine: ordering, cancellation, run semantics."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation.engine import Simulation


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        out = []
        sim.schedule(3.0, out.append, "c")
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        sim.run()
        assert out == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, sim):
        out = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, out.append, tag)
        sim.run()
        assert out == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_call_soon_runs_at_current_time(self, sim):
        seen = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.0]

    def test_call_soon_runs_after_already_queued_same_time_events(self, sim):
        out = []

        def first():
            sim.call_soon(out.append, "soon")

        sim.schedule(1.0, first)
        sim.schedule(1.0, out.append, "queued")
        sim.run()
        assert out == ["queued", "soon"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_past_absolute_time_rejected(self, sim):
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        out = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, out.append, "nested"))
        sim.run()
        assert out == ["nested"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        out = []
        handle = sim.schedule(1.0, out.append, "x")
        assert handle.cancel()
        sim.run()
        assert out == []

    def test_cancel_after_fire_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert not handle.cancel()

    def test_pending_property(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        handle.cancel()
        assert not handle.pending

    def test_pending_events_ignores_cancelled(self, sim):
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending_events == 1


class TestRunUntil:
    def test_run_until_stops_clock_at_bound(self, sim):
        out = []
        sim.schedule(1.0, out.append, "early")
        sim.schedule(10.0, out.append, "late")
        sim.run(until=5.0)
        assert out == ["early"]
        assert sim.now == 5.0

    def test_run_until_composes(self, sim):
        out = []
        sim.schedule(1.0, out.append, 1)
        sim.schedule(6.0, out.append, 6)
        sim.run(until=5.0)
        sim.run(until=10.0)
        assert out == [1, 6]

    def test_run_until_includes_boundary_events(self, sim):
        out = []
        sim.schedule(5.0, out.append, "edge")
        sim.run(until=5.0)
        assert out == ["edge"]

    def test_run_until_in_past_rejected(self, sim):
        sim.schedule(3.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestStepAndPeek:
    def test_peek_returns_next_time(self, sim):
        sim.schedule(2.0, lambda: None)
        assert sim.peek() == 2.0

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek() is None

    def test_peek_skips_cancelled(self, sim):
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek() == 2.0

    def test_step_fires_exactly_one(self, sim):
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        assert sim.step()
        assert out == ["a"]

    def test_step_on_empty_returns_false(self, sim):
        assert not sim.step()

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()


class TestDefer:
    def test_deferred_runs_after_same_instant_events(self, sim):
        out = []
        sim.defer("k", out.append, "flush")
        sim.schedule(0.0, out.append, "event")
        sim.run()
        assert out == ["event", "flush"]

    def test_same_key_coalesces_to_first_registration(self, sim):
        out = []
        sim.defer("k", out.append, "first")
        sim.defer("k", out.append, "second")
        sim.run()
        assert out == ["first"]

    def test_distinct_keys_flush_in_registration_order(self, sim):
        out = []
        sim.defer("b", out.append, 1)
        sim.defer("a", out.append, 2)
        sim.run()
        assert out == [1, 2]

    def test_flush_happens_before_time_advances(self, sim):
        seen = []

        def now_is():
            seen.append(sim.now)

        sim.schedule(1.0, sim.defer, "k", now_is)
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert seen == [1.0]  # flushed at t=1, not at the t=5 event

    def test_rearm_after_flush_fires_again(self, sim):
        out = []

        def flush():
            out.append(sim.now)
            if sim.now < 2.0:
                # New same-key deferral from *inside* a flush re-arms.
                sim.schedule(1.0, sim.defer, "k", flush)

        sim.defer("k", flush)
        sim.run()
        assert out == [0.0, 1.0, 2.0]

    def test_deferred_may_schedule_same_instant_work(self, sim):
        out = []
        sim.defer("k", lambda: sim.call_soon(out.append, sim.now))
        sim.run()
        assert out == [0.0]
        assert sim.now == 0.0

    def test_peek_reports_current_instant_while_deferred_pending(self, sim):
        sim.defer("k", lambda: None)
        assert sim.peek() == 0.0
        sim.schedule(4.0, lambda: None)
        assert sim.peek() == 0.0  # deferred work precedes the t=4 event
        sim.step()
        assert sim.peek() == 4.0

    def test_step_counts_flush_as_one_event(self, sim):
        for key in ("a", "b", "c"):
            sim.defer(key, lambda: None)
        before = sim.events_processed
        assert sim.step()
        assert sim.events_processed == before + 1

    def test_run_until_flushes_at_boundary(self, sim):
        out = []
        sim.schedule(2.0, sim.defer, "k", out.append, "x")
        sim.run(until=2.0)
        assert out == ["x"]


class TestEventsProcessed:
    def test_counts_fired_events(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_cancelled_events_not_counted(self, sim):
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        sim.run()
        assert sim.events_processed == 1
