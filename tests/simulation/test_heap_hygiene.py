"""Event-heap hygiene: lazy compaction and O(1) pending-event accounting."""

from repro.simulation.engine import Simulation


def test_cancel_is_idempotent():
    sim = Simulation()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.pending
    assert handle.cancel() is True
    assert not handle.pending
    handle.cancel()  # repeat cancel must not double-count the dead entry
    assert sim.stats()["cancelled_in_heap"] == 1
    fired = sim.schedule(1.0, lambda: None)
    sim.run()
    assert fired.cancel() is False  # already ran: cancel reports failure


def test_pending_events_excludes_cancelled():
    sim = Simulation()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    for handle in handles[::2]:
        handle.cancel()
    assert sim.pending_events == 5


def test_cancelled_events_never_fire():
    sim = Simulation()
    fired = []
    keep = sim.schedule(2.0, fired.append, "keep")
    kill = sim.schedule(1.0, fired.append, "kill")
    kill.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.fired


def test_compaction_triggers_when_dead_entries_dominate():
    sim = Simulation()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
    # Cancel from the back so the dead entries are NOT at the heap top —
    # only compaction (not top-popping) can reclaim them.
    for handle in handles[50:]:
        handle.cancel()
    assert sim.pending_events == 50
    sim.run()  # peek/step trigger the lazy sweep
    stats = sim.stats()
    assert stats["heap_compactions"] >= 1
    assert stats["cancelled_in_heap"] == 0
    assert sim.pending_events == 0


def test_compaction_preserves_execution_order():
    sim = Simulation()
    fired = []
    handles = [
        sim.schedule(float(i + 1), fired.append, i) for i in range(120)
    ]
    for i, handle in enumerate(handles):
        if i % 3:
            handle.cancel()
    sim.run()
    assert fired == [i for i in range(120) if i % 3 == 0]


def test_small_cancel_counts_do_not_compact():
    sim = Simulation()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for handle in handles[5:]:
        handle.cancel()
    sim.run()
    assert sim.stats()["heap_compactions"] == 0
