"""Synchronous (immediate) process interruption."""

import pytest

from repro.simulation.engine import Simulation
from repro.simulation.process import Interrupt, Process, Timeout


def test_immediate_interrupt_runs_cleanup_before_returning(sim):
    cleaned = []

    def proc():
        try:
            yield Timeout(100.0)
        except Interrupt:
            cleaned.append(sim.now)

    p = Process(sim, proc())
    sim.run(until=5.0)
    p.interrupt("now", immediate=True)
    # Cleanup already happened — no further event processing needed.
    assert cleaned == [5.0]
    assert not p.alive


def test_async_interrupt_defers_cleanup(sim):
    cleaned = []

    def proc():
        try:
            yield Timeout(100.0)
        except Interrupt:
            cleaned.append(True)

    p = Process(sim, proc())
    sim.run(until=1.0)
    p.interrupt("later")  # default: delivered on the next tick
    assert cleaned == []
    sim.run(until=1.0)
    assert cleaned == [True]


def test_immediate_interrupt_before_first_yield_falls_back(sim):
    started = []

    def proc():
        started.append(True)
        yield Timeout(10.0)

    p = Process(sim, proc())
    # The process has not reached its first yield (initial resume queued):
    # the interrupt falls back to async delivery — it lands right after the
    # first resume, so the body starts but the 10 s timeout never elapses.
    p.interrupt("early", immediate=True)
    sim.run()
    assert not p.alive
    assert started == [True]
    assert sim.now < 10.0


def test_immediate_interrupt_carries_cause(sim):
    causes = []

    def proc():
        try:
            yield Timeout(10.0)
        except Interrupt as stop:
            causes.append(stop.cause)

    p = Process(sim, proc())
    sim.run(until=1.0)
    p.interrupt("the-reason", immediate=True)
    assert causes == ["the-reason"]


def test_immediate_interrupt_on_dead_process_is_noop(sim):
    def proc():
        yield Timeout(1.0)

    p = Process(sim, proc())
    sim.run()
    p.interrupt(immediate=True)  # must not raise
    assert not p.alive


def test_interrupted_timeout_event_is_cancelled(sim):
    def proc():
        try:
            yield Timeout(50.0)
        except Interrupt:
            pass

    p = Process(sim, proc())
    sim.run(until=1.0)
    p.interrupt(immediate=True)
    assert sim.pending_events == 0  # the 50 s timeout died with the process
