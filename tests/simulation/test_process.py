"""Processes, signals, timeouts, interrupts, composite waits."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation.engine import Simulation
from repro.simulation.process import AllOf, AnyOf, Interrupt, Process, Signal, Timeout


class TestTimeout:
    def test_process_sleeps_for_delay(self, sim):
        times = []

        def proc():
            times.append(sim.now)
            yield Timeout(2.5)
            times.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert times == [0.0, 2.5]

    def test_timeout_carries_value(self, sim):
        got = []

        def proc():
            got.append((yield Timeout(1.0, value="payload")))

        Process(sim, proc())
        sim.run()
        assert got == ["payload"]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield Timeout(1.0)
            yield Timeout(2.0)

        p = Process(sim, proc())
        sim.run()
        assert sim.now == 3.0
        assert not p.alive


class TestSignal:
    def test_waiter_resumes_with_value(self, sim):
        signal = Signal(sim, "s")
        got = []

        def waiter():
            got.append((yield signal))

        Process(sim, waiter())
        sim.schedule(3.0, signal.trigger, 42)
        sim.run()
        assert got == [42]
        assert sim.now == 3.0

    def test_multiple_waiters_all_resume(self, sim):
        signal = Signal(sim)
        got = []

        def waiter(tag):
            value = yield signal
            got.append((tag, value))

        Process(sim, waiter("a"))
        Process(sim, waiter("b"))
        sim.schedule(1.0, signal.trigger, "v")
        sim.run()
        assert sorted(got) == [("a", "v"), ("b", "v")]

    def test_wait_on_already_triggered_signal(self, sim):
        signal = Signal(sim)
        signal.trigger("early")
        got = []

        def waiter():
            got.append((yield signal))

        Process(sim, waiter())
        sim.run()
        assert got == ["early"]

    def test_double_trigger_raises(self, sim):
        signal = Signal(sim)
        signal.trigger()
        with pytest.raises(SimulationError):
            signal.trigger()

    def test_fail_propagates_into_waiter(self, sim):
        signal = Signal(sim)
        caught = []

        def waiter():
            try:
                yield signal
            except RuntimeError as exc:
                caught.append(str(exc))

        Process(sim, waiter())
        sim.schedule(1.0, signal.fail, RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]


class TestProcess:
    def test_return_value_recorded(self, sim):
        def proc():
            yield Timeout(1.0)
            return "result"

        p = Process(sim, proc())
        sim.run()
        assert p.value == "result"
        assert not p.alive

    def test_waiting_on_process_gets_return_value(self, sim):
        def child():
            yield Timeout(2.0)
            return 7

        def parent():
            value = yield Process(sim, child(), name="child")
            return value * 10

        p = Process(sim, parent(), name="parent")
        sim.run()
        assert p.value == 70

    def test_child_exception_reraised_in_parent(self, sim):
        def child():
            yield Timeout(1.0)
            raise ValueError("child died")

        def parent():
            try:
                yield Process(sim, child())
            except ValueError as exc:
                return f"caught {exc}"

        p = Process(sim, parent())
        sim.run()
        assert p.value == "caught child died"

    def test_unwaited_exception_escapes_loudly(self, sim):
        def proc():
            yield Timeout(1.0)
            raise ValueError("unhandled")

        Process(sim, proc())
        with pytest.raises(ValueError, match="unhandled"):
            sim.run()

    def test_yielding_garbage_raises(self, sim):
        def proc():
            yield "not a waitable"

        Process(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestInterrupt:
    def test_interrupt_raises_inside_process(self, sim):
        events = []

        def proc():
            try:
                yield Timeout(100.0)
            except Interrupt as stop:
                events.append((sim.now, stop.cause))

        p = Process(sim, proc())
        sim.schedule(5.0, p.interrupt, "preempted")
        sim.run()
        assert events == [(5.0, "preempted")]
        assert sim.now == pytest.approx(5.0)

    def test_interrupted_timeout_does_not_fire_later(self, sim):
        resumed = []

        def proc():
            try:
                yield Timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                pass

        p = Process(sim, proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert resumed == []
        assert sim.now == pytest.approx(1.0)

    def test_interrupt_dead_process_is_noop(self, sim):
        def proc():
            yield Timeout(1.0)

        p = Process(sim, proc())
        sim.run()
        p.interrupt()  # must not raise
        sim.run()

    def test_unhandled_interrupt_terminates_process(self, sim):
        def proc():
            yield Timeout(100.0)

        p = Process(sim, proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert not p.alive


class TestComposites:
    def test_allof_waits_for_every_child(self, sim):
        def child(delay):
            yield Timeout(delay)
            return delay

        def parent():
            values = yield AllOf(
                [Process(sim, child(1.0)), Process(sim, child(3.0))]
            )
            return values

        p = Process(sim, parent())
        sim.run()
        assert p.value == [1.0, 3.0]
        assert sim.now == 3.0

    def test_allof_empty_resumes_immediately(self, sim):
        def parent():
            values = yield AllOf([])
            return values

        p = Process(sim, parent())
        sim.run()
        assert p.value == []

    def test_anyof_returns_first_with_index(self, sim):
        def parent():
            result = yield AnyOf([Timeout(5.0, "slow"), Timeout(1.0, "fast")])
            return result

        p = Process(sim, parent())
        sim.run()
        assert p.value == (1, "fast")
        # The losing timeout is unsubscribed (cancelled); the clock stops
        # at the winner.
        assert sim.now == pytest.approx(1.0)

    def test_anyof_requires_children(self):
        with pytest.raises(SimulationError):
            AnyOf([])

    def test_allof_failure_propagates(self, sim):
        def bad():
            yield Timeout(1.0)
            raise RuntimeError("nope")

        def parent():
            try:
                yield AllOf([Process(sim, bad()), Timeout(10.0)])
            except RuntimeError:
                return "failed fast"

        p = Process(sim, parent())
        sim.run()
        assert p.value == "failed fast"
