"""Store and CountingResource semantics."""

import pytest

from repro.common.errors import CapacityError, SimulationError
from repro.simulation.process import Process, Timeout
from repro.simulation.resources import CountingResource, Store


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        got = []

        def proc():
            got.append((yield store.get()))

        Process(sim, proc())
        sim.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            value = yield store.get()
            got.append((sim.now, value))

        Process(sim, consumer())
        sim.schedule(4.0, store.put, "late")
        sim.run()
        assert got == [(4.0, "late")]

    def test_fifo_ordering_of_items(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        Process(sim, consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_fifo_ordering_of_getters(self, sim):
        store = Store(sim)
        got = []

        def consumer(tag):
            value = yield store.get()
            got.append((tag, value))

        Process(sim, consumer("first"))
        Process(sim, consumer("second"))
        sim.schedule(1.0, store.put, "a")
        sim.schedule(2.0, store.put, "b")
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(9)
        assert store.try_get() == 9

    def test_len_and_waiting(self, sim):
        store = Store(sim)
        store.put(1)
        assert len(store) == 1
        assert store.waiting_getters == 0

    def test_drain(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.drain() == [1, 2]
        assert len(store) == 0


class TestCountingResource:
    def test_capacity_enforced(self, sim):
        res = CountingResource(sim, capacity=1)
        order = []

        def worker(tag, hold):
            yield res.acquire()
            order.append((tag, sim.now))
            yield Timeout(hold)
            res.release()

        Process(sim, worker("a", 2.0))
        Process(sim, worker("b", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0)]

    def test_counters(self, sim):
        res = CountingResource(sim, capacity=2)
        assert res.available == 2
        assert res.try_acquire()
        assert res.in_use == 1
        assert res.available == 1

    def test_try_acquire_fails_at_capacity(self, sim):
        res = CountingResource(sim, capacity=1)
        assert res.try_acquire()
        assert not res.try_acquire()

    def test_release_grants_to_waiter(self, sim):
        res = CountingResource(sim, capacity=1)
        res.try_acquire()
        got = []

        def waiter():
            yield res.acquire()
            got.append(sim.now)

        Process(sim, waiter())
        sim.schedule(3.0, res.release)
        sim.run()
        assert got == [3.0]
        assert res.in_use == 1  # the unit passed to the waiter

    def test_release_idle_raises(self, sim):
        res = CountingResource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(CapacityError):
            CountingResource(sim, capacity=0)

    def test_queued_counts_waiters(self, sim):
        res = CountingResource(sim, capacity=1)
        res.try_acquire()

        def waiter():
            yield res.acquire()

        Process(sim, waiter())
        sim.run()
        assert res.queued == 1
