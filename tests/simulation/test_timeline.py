"""Timeline: recording, querying, fingerprinting."""

from repro.simulation.timeline import Timeline, TimelineRecord


def make_timeline(times):
    it = iter(times)
    return Timeline(clock=lambda: next(it))


def test_records_carry_time_and_details():
    tl = make_timeline([1.5])
    tl.record("task.start", "t-0", executor="e-1", node="w-2")
    rec = tl[0]
    assert rec.time == 1.5
    assert rec.kind == "task.start"
    assert rec.get("executor") == "e-1"
    assert rec.get("missing", "dflt") == "dflt"


def test_disabled_timeline_records_nothing():
    tl = Timeline(clock=lambda: 0.0, enabled=False)
    tl.record("x", "y")
    assert len(tl) == 0


def test_of_kind_filters():
    tl = make_timeline([1, 2, 3])
    tl.record("a", "s1")
    tl.record("b", "s2")
    tl.record("a", "s3")
    assert [r.subject for r in tl.of_kind("a")] == ["s1", "s3"]
    assert [r.subject for r in tl.of_kind("a", "b")] == ["s1", "s2", "s3"]


def test_about_filters_by_subject():
    tl = make_timeline([1, 2])
    tl.record("a", "x")
    tl.record("b", "x")
    assert len(tl.about("x")) == 2
    assert tl.about("y") == []


def test_first_finds_earliest():
    tl = make_timeline([1, 2, 3])
    tl.record("k", "s1")
    tl.record("k", "s2")
    tl.record("other", "s3")
    assert tl.first("k").subject == "s1"
    assert tl.first("k", subject="s2").time == 2
    assert tl.first("nope") is None


def test_as_dict_flattens():
    rec = TimelineRecord(1.0, "k", "s", (("a", 1), ("b", 2)))
    assert rec.as_dict() == {"time": 1.0, "kind": "k", "subject": "s", "a": 1, "b": 2}


def test_fingerprint_is_order_sensitive():
    t1 = make_timeline([1, 2])
    t1.record("a", "x")
    t1.record("b", "y")
    t2 = make_timeline([1, 2])
    t2.record("b", "y")
    t2.record("a", "x")
    assert t1.fingerprint() != t2.fingerprint()


def test_fingerprint_equal_for_identical_traces():
    def build():
        tl = make_timeline([1, 2])
        tl.record("a", "x", k=1)
        tl.record("b", "y", k=2)
        return tl

    assert build().fingerprint() == build().fingerprint()


def test_tail_renders_lines():
    tl = make_timeline([1, 2, 3])
    for i in range(3):
        tl.record("kind", f"s{i}")
    tail = tl.tail(2)
    assert "s1" in tail and "s2" in tail and "s0" not in tail


def test_iteration_in_time_order():
    tl = make_timeline([1, 2, 3])
    for i in range(3):
        tl.record("k", str(i))
    assert [r.subject for r in tl] == ["0", "1", "2"]
