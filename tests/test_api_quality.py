"""API quality gates: docstrings and __all__ hygiene across the package.

These are meta-tests: every public module, class and function in
:mod:`repro` must carry a docstring, and every name exported via ``__all__``
must actually exist.  They keep the documentation deliverable honest as the
codebase grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PRIVATE = "_"


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_exports_exist(module):
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name!r}"


def _public_members():
    seen = set()
    for module in MODULES:
        for name, obj in vars(module).items():
            if name.startswith(PRIVATE):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro") is False:
                continue
            key = (obj.__module__, getattr(obj, "__qualname__", name))
            if key in seen:
                continue
            seen.add(key)
            yield key, obj


PUBLIC = list(_public_members())


@pytest.mark.parametrize(
    "key,obj", PUBLIC, ids=[f"{m}.{q}" for (m, q), _ in PUBLIC]
)
def test_public_members_have_docstrings(key, obj):
    assert inspect.getdoc(obj), f"{key[0]}.{key[1]} lacks a docstring"


def test_public_methods_have_docstrings():
    missing = []
    for (module, qualname), obj in PUBLIC:
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith(PRIVATE):
                continue
            if inspect.isfunction(member) or isinstance(member, property):
                target = member.fget if isinstance(member, property) else member
                if target is not None and not inspect.getdoc(target):
                    missing.append(f"{module}.{qualname}.{name}")
    assert not missing, f"methods without docstrings: {missing}"
