"""Application locality record — Algorithm 1's sort keys."""

import pytest

from repro.hdfs.blocks import Block
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


def make_job(job_id, app_id="a-0", n=2):
    tasks = [
        Task(
            f"{job_id}-t{i}", job_id=job_id, app_id=app_id, stage_index=0,
            kind=TaskKind.INPUT, cpu_time=1.0,
            block=Block(f"{job_id}-b{i}", path="/f", index=i, size=1.0),
        )
        for i in range(n)
    ]
    return Job(job_id, app_id, [Stage(0, tasks)])


def decide(job, locals_):
    for t, is_local in zip(job.input_tasks, locals_):
        t.was_local = is_local


def test_add_job_checks_ownership():
    app = Application("a-0")
    with pytest.raises(ValueError):
        app.add_job(make_job("j", app_id="other"))


def test_empty_app_scores_zero():
    app = Application("a-0")
    assert app.local_job_fraction == 0.0
    assert app.local_task_fraction == 0.0


def test_local_job_fraction_counts_only_decided():
    app = Application("a-0")
    j1, j2, j3 = (make_job(f"j{i}") for i in range(3))
    for j in (j1, j2, j3):
        app.add_job(j)
    decide(j1, [True, True])   # local
    decide(j2, [True, False])  # not local
    # j3 undecided -> excluded
    assert app.local_job_fraction == pytest.approx(0.5)


def test_local_task_fraction():
    app = Application("a-0")
    j = make_job("j0", n=4)
    app.add_job(j)
    decide(j, [True, True, False, True])
    assert app.local_task_fraction == pytest.approx(0.75)


def test_locality_key_ordering_matches_algorithm1():
    low = Application("a-low")
    high = Application("a-high")
    j_low, j_high = make_job("jl", "a-low"), make_job("jh", "a-high")
    low.add_job(j_low)
    high.add_job(j_high)
    decide(j_low, [False, False])
    decide(j_high, [True, True])
    assert low.locality_key() < high.locality_key()


def test_tie_broken_by_task_fraction():
    a = Application("a-0")
    b = Application("a-1")
    ja1, ja2 = make_job("ja1", "a-0"), make_job("ja2", "a-0")
    jb1, jb2 = make_job("jb1", "a-1"), make_job("jb2", "a-1")
    for app, jobs in ((a, (ja1, ja2)), (b, (jb1, jb2))):
        for j in jobs:
            app.add_job(j)
    # Both apps: 1 of 2 jobs local; but a has fewer local tasks.
    decide(ja1, [True, True])
    decide(ja2, [False, False])
    decide(jb1, [True, True])
    decide(jb2, [True, False])
    assert a.local_job_fraction == b.local_job_fraction
    assert a.locality_key() < b.locality_key()


def test_active_and_pending_jobs():
    app = Application("a-0")
    j1, j2 = make_job("j1"), make_job("j2")
    app.add_job(j1)
    app.add_job(j2)
    j1.submitted_at = 1.0
    assert app.active_jobs == [j1]
    assert app.pending_jobs == [j2]
    j1.finished_at = 2.0
    assert app.active_jobs == []


def test_input_tasks_aggregates_all_jobs():
    app = Application("a-0")
    app.add_job(make_job("j1", n=2))
    app.add_job(make_job("j2", n=3))
    assert len(app.input_tasks) == 5


def test_reset_runtime():
    app = Application("a-0")
    j = make_job("j1")
    app.add_job(j)
    decide(j, [True, True])
    j.submitted_at = 0.0
    app.reset_runtime()
    assert app.local_job_fraction == 0.0
    assert j.submitted_at is None
