"""Nonhomogeneous arrivals: thinning correctness and diurnal shape."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workload.arrivals import diurnal_rate, diurnal_schedule, thinned_schedule


class TestDiurnalRate:
    def test_swings_around_base(self):
        rate = diurnal_rate(1.0, amplitude=0.5, period=100.0)
        assert rate(25.0) == pytest.approx(1.5)  # sin peak
        assert rate(75.0) == pytest.approx(0.5)  # sin trough
        assert rate(0.0) == pytest.approx(1.0)

    def test_phase_shifts_the_peak(self):
        rate = diurnal_rate(1.0, amplitude=1.0, period=100.0, phase=25.0)
        assert rate(0.0) == pytest.approx(2.0)

    def test_nonnegative_for_unit_amplitude(self):
        rate = diurnal_rate(2.0, amplitude=1.0, period=50.0)
        assert min(rate(t) for t in np.linspace(0, 200, 1000)) >= 0.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            diurnal_rate(0.0)
        with pytest.raises(ConfigurationError):
            diurnal_rate(1.0, amplitude=1.5)
        with pytest.raises(ConfigurationError):
            diurnal_rate(1.0, period=0.0)


class TestThinning:
    def test_constant_rate_matches_homogeneous_mean(self):
        # Thinning a constant rate == a plain Poisson process: the mean
        # inter-arrival must come out at 1/rate.
        rng = np.random.default_rng(0)
        trace = thinned_schedule(("a",), 4000, rng, lambda t: 0.5, rate_max=0.5)
        times = [e.time for e in trace]
        gaps = np.diff([0.0] + times)
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.1)

    def test_acceptance_fraction_scales_with_rate(self):
        # At rate = rate_max/4, ~4 candidates are drawn per acceptance, so
        # the realised mean gap is ~4x the candidate gap.
        rng = np.random.default_rng(1)
        trace = thinned_schedule(("a",), 4000, rng, lambda t: 0.25, rate_max=1.0)
        gaps = np.diff([0.0] + [e.time for e in trace])
        assert np.mean(gaps) == pytest.approx(4.0, rel=0.1)

    def test_streams_are_independent_per_app(self):
        rng = np.random.default_rng(2)
        trace = thinned_schedule(("a", "b"), 50, rng, lambda t: 1.0, rate_max=1.0)
        per_app = trace.per_app()
        assert len(per_app["a"]) == len(per_app["b"]) == 50
        assert [e.time for e in per_app["a"]] != [e.time for e in per_app["b"]]

    def test_dominating_rate_violation_raises(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ConfigurationError, match="exceeds rate_max"):
            thinned_schedule(("a",), 10, rng, lambda t: 2.0, rate_max=1.0)

    def test_negative_rate_raises(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ConfigurationError, match="negative"):
            thinned_schedule(("a",), 10, rng, lambda t: -0.1, rate_max=1.0)

    def test_invalid_params(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ConfigurationError):
            thinned_schedule(("a",), 0, rng, lambda t: 1.0, rate_max=1.0)
        with pytest.raises(ConfigurationError):
            thinned_schedule(("a", "a"), 5, rng, lambda t: 1.0, rate_max=1.0)
        with pytest.raises(ConfigurationError):
            thinned_schedule(("a",), 5, rng, lambda t: 1.0, rate_max=0.0)


class TestDiurnalSchedule:
    def test_produces_replayable_trace(self):
        rng = np.random.default_rng(6)
        trace = diurnal_schedule(("app-00", "app-01"), 20, rng)
        assert trace.validate() is trace
        assert len(trace) == 40

    def test_day_half_outweighs_night_half(self):
        # Strong swing, zero phase: the rate exceeds base exactly on each
        # period's first half, so arrivals must bunch there.
        rng = np.random.default_rng(7)
        period = 200.0
        trace = diurnal_schedule(
            ("a",), 400, rng,
            mean_interarrival=2.0, amplitude=0.9,
            period=period, phase=0.0,
        )
        day = sum(1 for e in trace if (e.time % period) < period / 2)
        night = len(trace) - day
        assert day > 1.5 * night

    def test_deterministic_under_seed(self):
        t1 = diurnal_schedule(("a",), 30, np.random.default_rng(8))
        t2 = diurnal_schedule(("a",), 30, np.random.default_rng(8))
        assert t1.to_records() == t2.to_records()

    def test_invalid_mean(self):
        with pytest.raises(ConfigurationError):
            diurnal_schedule(("a",), 5, np.random.default_rng(9),
                             mean_interarrival=0.0)
