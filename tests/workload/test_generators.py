"""Workload profiles and the job factory."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB
from repro.workload.generators import (
    PAGERANK,
    SORT,
    WORDCOUNT,
    JobFactory,
    WorkloadProfile,
    profile_by_name,
)
from repro.workload.task import TaskKind


class TestProfiles:
    def test_paper_input_sizes(self):
        assert PAGERANK.input_size_min == PAGERANK.input_size_max == 1 * GB
        assert WORDCOUNT.input_size_min == 4 * GB
        assert WORDCOUNT.input_size_max == 8 * GB
        assert SORT.input_size_min == 1 * GB
        assert SORT.input_size_max == 8 * GB

    def test_pagerank_is_iterative(self):
        assert PAGERANK.iterations > 1
        assert WORDCOUNT.iterations == 1
        assert SORT.iterations == 1

    def test_wordcount_is_network_light(self):
        assert WORDCOUNT.shuffle_fraction < 0.1
        assert SORT.shuffle_fraction == 1.0

    def test_profile_by_name(self):
        assert profile_by_name("pagerank") is PAGERANK
        with pytest.raises(ConfigurationError):
            profile_by_name("bogus")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"input_size_min": 0, "input_size_max": 1},
            {"input_size_min": 2, "input_size_max": 1},
            {"iterations": 0},
            {"reduce_fanin": 0.0},
            {"shuffle_fraction": -0.1},
        ],
    )
    def test_invalid_profile(self, kwargs):
        base = dict(
            name="x", input_size_min=1.0, input_size_max=2.0,
            shuffle_fraction=1.0, iterations=1,
            cpu_secs_per_mb_map=0.01, cpu_secs_per_mb_reduce=0.01,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(**base)


class TestJobFactory:
    @pytest.fixture
    def factory(self, small_hdfs):
        return JobFactory(small_hdfs, np.random.default_rng(3), pool_size=4)

    def test_job_structure(self, factory):
        profile = WorkloadProfile(
            name="mini", input_size_min=30 * 2**20, input_size_max=30 * 2**20,
            shuffle_fraction=1.0, iterations=2,
            cpu_secs_per_mb_map=0.01, cpu_secs_per_mb_reduce=0.01,
        )
        job = factory.build_job("app-0", profile)
        assert len(job.stages) == 3  # input + 2 shuffle rounds
        assert job.input_stage.is_input_stage
        assert job.num_input_tasks == 3  # 30 MB / 10 MB blocks
        for stage in job.stages[1:]:
            assert all(t.kind is TaskKind.SHUFFLE for t in stage.tasks)

    def test_one_input_task_per_block(self, factory):
        profile = WorkloadProfile(
            name="mini", input_size_min=25 * 2**20, input_size_max=25 * 2**20,
            shuffle_fraction=0.1, iterations=1,
            cpu_secs_per_mb_map=0.01, cpu_secs_per_mb_reduce=0.01,
        )
        job = factory.build_job("app-0", profile)
        blocks = [t.block.block_id for t in job.input_tasks]
        assert len(blocks) == len(set(blocks)) == 3

    def test_shuffle_volume_respects_fraction(self, factory):
        profile = WorkloadProfile(
            name="mini", input_size_min=20 * 2**20, input_size_max=20 * 2**20,
            shuffle_fraction=0.5, iterations=1,
            cpu_secs_per_mb_map=0.01, cpu_secs_per_mb_reduce=0.01,
        )
        job = factory.build_job("app-0", profile)
        total_shuffle = sum(t.shuffle_bytes for t in job.stages[1].tasks)
        assert total_shuffle == pytest.approx(10 * 2**20)

    def test_reduce_fanin(self, factory):
        profile = WorkloadProfile(
            name="mini", input_size_min=40 * 2**20, input_size_max=40 * 2**20,
            shuffle_fraction=1.0, iterations=1,
            cpu_secs_per_mb_map=0.01, cpu_secs_per_mb_reduce=0.01,
            reduce_fanin=0.25,
        )
        job = factory.build_job("app-0", profile)
        assert job.num_input_tasks == 4
        assert len(job.stages[1]) == 1

    def test_pool_is_reused_across_jobs(self, factory, small_hdfs):
        profile = WorkloadProfile(
            name="mini", input_size_min=10 * 2**20, input_size_max=10 * 2**20,
            shuffle_fraction=0.1, iterations=1,
            cpu_secs_per_mb_map=0.01, cpu_secs_per_mb_reduce=0.01,
        )
        for _ in range(10):
            factory.build_job("app-0", profile)
        # Only pool_size files were ever ingested for this profile.
        assert len(small_hdfs.namenode.files()) == 4

    def test_cpu_time_positive_and_noisy(self, factory):
        profile = WorkloadProfile(
            name="mini", input_size_min=30 * 2**20, input_size_max=30 * 2**20,
            shuffle_fraction=0.1, iterations=1,
            cpu_secs_per_mb_map=0.01, cpu_secs_per_mb_reduce=0.01,
        )
        job = factory.build_job("app-0", profile)
        cpu = [t.cpu_time for t in job.input_tasks]
        assert all(c > 0 for c in cpu)
        assert len(set(cpu)) > 1  # lognormal noise applied per task

    def test_deterministic_given_same_rng(self, small_hdfs, small_cluster):
        from repro.cluster.cluster import Cluster

        def build():
            cluster = Cluster(small_cluster.config)
            from repro.common.units import BlockSpec, MB
            from repro.hdfs.filesystem import HDFS

            hdfs = HDFS(
                cluster,
                block_spec=BlockSpec(size=10 * MB, replication=2),
                rng=np.random.default_rng(7),
            )
            factory = JobFactory(hdfs, np.random.default_rng(3), pool_size=2)
            job = factory.build_job("app-0", WORDCOUNT)
            return [t.cpu_time for t in job.input_tasks]

        assert build() == build()
