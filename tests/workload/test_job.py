"""Job and Stage: structure, locality, timing."""

import pytest

from repro.hdfs.blocks import Block
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


def make_job(n_inputs=2, n_shuffle=1):
    inputs = [
        Task(
            f"t-in-{i}", job_id="j-0", app_id="a-0", stage_index=0,
            kind=TaskKind.INPUT, cpu_time=1.0,
            block=Block(f"b-{i}", path="/f", index=i, size=1.0),
        )
        for i in range(n_inputs)
    ]
    stages = [Stage(0, inputs)]
    if n_shuffle:
        shuffles = [
            Task(
                f"t-sh-{i}", job_id="j-0", app_id="a-0", stage_index=1,
                kind=TaskKind.SHUFFLE, cpu_time=1.0, shuffle_bytes=1.0,
            )
            for i in range(n_shuffle)
        ]
        stages.append(Stage(1, shuffles))
    return Job("j-0", "a-0", stages, workload="test")


class TestStructure:
    def test_counts(self):
        job = make_job(3, 2)
        assert job.num_input_tasks == 3
        assert len(job.all_tasks) == 5
        assert len(job.input_tasks) == 3

    def test_stage_zero_must_be_input(self):
        shuffle = Task(
            "t", job_id="j", app_id="a", stage_index=0,
            kind=TaskKind.SHUFFLE, cpu_time=1.0,
        )
        with pytest.raises(ValueError):
            Job("j", "a", [Stage(0, [shuffle])])

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError):
            Stage(0, [])

    def test_empty_job_rejected(self):
        with pytest.raises(ValueError):
            Job("j", "a", [])


class TestLocality:
    def test_undecided_before_run(self):
        job = make_job()
        assert job.is_local_job is None
        assert job.local_input_fraction is None

    def test_perfectly_local_job(self):
        job = make_job()
        for t in job.input_tasks:
            t.was_local = True
        assert job.is_local_job is True
        assert job.local_input_fraction == 1.0

    def test_one_remote_task_breaks_job_locality(self):
        job = make_job(4)
        for t in job.input_tasks:
            t.was_local = True
        job.input_tasks[2].was_local = False
        assert job.is_local_job is False
        assert job.local_input_fraction == pytest.approx(0.75)

    def test_partially_decided_is_undecided(self):
        job = make_job(2)
        job.input_tasks[0].was_local = True
        assert job.is_local_job is None

    def test_unsatisfied_input_tasks(self):
        job = make_job(3)
        job.input_tasks[0].was_local = True
        assert len(job.unsatisfied_input_tasks) == 2


class TestTiming:
    def test_completion_time(self):
        job = make_job()
        job.submitted_at, job.finished_at = 10.0, 35.0
        assert job.completion_time == pytest.approx(25.0)

    def test_input_stage_time(self):
        job = make_job(2, 0)
        for i, t in enumerate(job.input_tasks):
            t.started_at = 1.0 + i
            t.finished_at = 5.0 + i
        assert job.input_stage_time == pytest.approx(6.0 - 1.0)

    def test_stage_barrier_semantics(self):
        job = make_job(2, 0)
        stage = job.input_stage
        assert not stage.finished
        stage.tasks[0].finished_at = 1.0
        assert not stage.finished
        stage.tasks[1].finished_at = 3.0
        assert stage.finished
        assert stage.finish_time == 3.0

    def test_reset_runtime_cascades(self):
        job = make_job()
        job.submitted_at = job.finished_at = 1.0
        for t in job.all_tasks:
            t.started_at = 1.0
        job.reset_runtime()
        assert job.submitted_at is None
        assert all(t.started_at is None for t in job.all_tasks)
