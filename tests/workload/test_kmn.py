"""KMN-style partial-input jobs ([10]): quorum barriers and cancellation."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.hdfs.blocks import Block
from repro.workload.generators import WORDCOUNT, JobFactory
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind

BASE = dict(
    workload="wordcount", num_nodes=15, num_apps=2, jobs_per_app=3, seed=8
)


def make_job(n=4, required=None):
    tasks = [
        Task(
            f"t{i}", job_id="j", app_id="a", stage_index=0,
            kind=TaskKind.INPUT, cpu_time=1.0,
            block=Block(f"b{i}", path="/f", index=i, size=1.0),
        )
        for i in range(n)
    ]
    return Job("j", "a", [Stage(0, tasks)], required_inputs=required)


class TestJobModel:
    def test_quorum_defaults_to_all(self):
        job = make_job(4)
        assert job.input_quorum == 4

    def test_quorum_set(self):
        job = make_job(4, required=3)
        assert job.input_quorum == 3

    def test_quorum_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_job(4, required=0)
        with pytest.raises(ValueError):
            make_job(4, required=5)

    def test_kmn_job_local_when_quorum_local(self):
        job = make_job(4, required=2)
        job.input_tasks[0].was_local = True
        job.input_tasks[1].was_local = True
        job.input_tasks[2].cancelled = True
        job.input_tasks[3].cancelled = True
        assert job.is_local_job is True

    def test_kmn_job_not_local_when_quorum_misses(self):
        job = make_job(4, required=2)
        job.input_tasks[0].was_local = True
        job.input_tasks[1].was_local = False
        assert job.is_local_job is False

    def test_stage_finished_with_cancelled_tasks(self):
        job = make_job(3, required=2)
        stage = job.input_stage
        stage.tasks[0].finished_at = 1.0
        stage.tasks[1].finished_at = 2.0
        stage.tasks[2].cancelled = True
        assert stage.finished
        assert stage.finish_time == 2.0


class TestFactory:
    def test_fraction_sets_required(self, small_hdfs):
        factory = JobFactory(small_hdfs, np.random.default_rng(1), pool_size=2)
        job = factory.build_job("a", WORDCOUNT, input_fraction=0.5)
        import math

        assert job.required_inputs == max(1, math.ceil(0.5 * job.num_input_tasks))

    def test_fraction_one_means_full_job(self, small_hdfs):
        factory = JobFactory(small_hdfs, np.random.default_rng(1), pool_size=2)
        job = factory.build_job("a", WORDCOUNT, input_fraction=1.0)
        assert job.required_inputs is None

    def test_invalid_fraction_rejected(self, small_hdfs):
        from repro.common.errors import ConfigurationError

        factory = JobFactory(small_hdfs, np.random.default_rng(1), pool_size=2)
        with pytest.raises(ConfigurationError):
            factory.build_job("a", WORDCOUNT, input_fraction=0.0)


class TestEndToEnd:
    def test_surplus_tasks_cancelled(self):
        result = run_experiment(
            ExperimentConfig(manager="custody", kmn_fraction=0.75, **BASE)
        )
        cancelled = sum(
            1
            for a in result.apps
            for j in a.jobs
            for t in j.input_tasks
            if t.cancelled
        )
        assert cancelled > 0
        assert result.metrics.unfinished_jobs == 0

    def test_exactly_quorum_tasks_finish_per_job(self):
        result = run_experiment(
            ExperimentConfig(manager="custody", kmn_fraction=0.8, **BASE)
        )
        for app in result.apps:
            for job in app.jobs:
                finished = sum(1 for t in job.input_tasks if t.finished)
                assert finished == job.input_quorum

    def test_kmn_improves_locality_and_jct(self):
        full = run_experiment(ExperimentConfig(manager="standalone", **BASE))
        kmn = run_experiment(
            ExperimentConfig(manager="standalone", kmn_fraction=0.75, **BASE)
        )
        # Dropping the least-convenient quarter of the blocks helps both
        # metrics — the "power of choice".
        assert kmn.metrics.locality_mean >= full.metrics.locality_mean
        assert kmn.metrics.avg_jct <= full.metrics.avg_jct

    def test_invalid_config_fraction(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentConfig(kmn_fraction=1.5)

    def test_determinism_with_kmn(self):
        config = ExperimentConfig(manager="custody", kmn_fraction=0.8, **BASE)
        assert run_experiment(config).metrics == run_experiment(config).metrics
