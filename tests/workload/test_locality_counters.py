"""The O(1) locality counters must mirror the scanning properties exactly.

``Job.note_input_decided`` / ``Application.note_input_decided`` feed the
incremental demand index; any drift from the ``is_local_job`` /
``local_job_fraction`` scans would silently change Algorithm 1's ordering.
"""

import random

from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind


class _FakeBlock:
    def __init__(self, block_id):
        self.block_id = block_id


def make_job(job_id, app_id, n_tasks, required=None):
    tasks = [
        Task(
            f"{job_id}/t{i}", job_id=job_id, app_id=app_id, stage_index=0,
            kind=TaskKind.INPUT, cpu_time=1.0, block=_FakeBlock(f"b{i}"),
        )
        for i in range(n_tasks)
    ]
    return Job(job_id, app_id, [Stage(0, tasks)], required_inputs=required)


def decide(app, job, task, was_local):
    task.was_local = was_local
    app.note_input_decided(job, was_local)


def assert_counters_match_scans(app):
    decided_jobs = [j for j in app.jobs if j.is_local_job is not None]
    assert app.decided_job_count == len(decided_jobs)
    assert app.local_job_count == sum(1 for j in decided_jobs if j.is_local_job)
    decided_tasks = [t for t in app.input_tasks if t.was_local is not None]
    assert app.decided_task_count == len(decided_tasks)
    assert app.local_task_count == sum(1 for t in decided_tasks if t.was_local)
    for job in app.jobs:
        assert job.counted_local_state == job.is_local_job


def test_full_job_counters_track_the_scan():
    app = Application("A")
    job = make_job("j1", "A", 3)
    app.add_job(job)
    decide(app, job, job.input_tasks[0], True)
    assert_counters_match_scans(app)
    assert job.counted_local_state is None  # undecided until all tasks run
    decide(app, job, job.input_tasks[1], True)
    decide(app, job, job.input_tasks[2], True)
    assert_counters_match_scans(app)
    assert job.counted_local_state is True


def test_one_remote_task_makes_the_job_non_local():
    app = Application("A")
    job = make_job("j1", "A", 2)
    app.add_job(job)
    decide(app, job, job.input_tasks[0], True)
    decide(app, job, job.input_tasks[1], False)
    assert job.counted_local_state is False
    assert_counters_match_scans(app)


def test_kmn_job_flips_false_to_true_after_quorum():
    """A K-of-N job decided non-local at quorum can turn local later."""
    app = Application("A")
    job = make_job("j1", "A", 4, required=2)
    app.add_job(job)
    decide(app, job, job.input_tasks[0], False)
    decide(app, job, job.input_tasks[1], False)
    assert job.counted_local_state is False  # quorum reached, 0 local
    assert_counters_match_scans(app)
    decide(app, job, job.input_tasks[2], True)
    decide(app, job, job.input_tasks[3], True)
    assert job.counted_local_state is True  # 2 local >= K: flipped
    assert_counters_match_scans(app)
    assert app.local_job_count == 1


def test_randomized_decision_streams_match_scans():
    rng = random.Random(3)
    for trial in range(30):
        app = Application("A")
        jobs = []
        for j in range(rng.randint(1, 5)):
            n = rng.randint(1, 6)
            required = rng.randint(1, n) if rng.random() < 0.4 else None
            job = make_job(f"j{j}", "A", n, required=required)
            app.add_job(job)
            jobs.append(job)
        undecided = [
            (job, task) for job in jobs for task in job.input_tasks
        ]
        rng.shuffle(undecided)
        for job, task in undecided:
            decide(app, job, task, rng.random() < 0.5)
            assert_counters_match_scans(app)


def test_reset_runtime_clears_counters():
    app = Application("A")
    job = make_job("j1", "A", 2)
    app.add_job(job)
    decide(app, job, job.input_tasks[0], True)
    decide(app, job, job.input_tasks[1], True)
    app.reset_runtime()
    assert app.decided_job_count == 0
    assert app.local_job_count == 0
    assert app.decided_task_count == 0
    assert app.local_task_count == 0
    assert job.counted_local_state is None
    assert_counters_match_scans(app)
