"""Cluster-trace replay adapter: mapping, scaling, strictness."""

from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.workload.replay import (
    ALIBABA_COLUMNS,
    GOOGLE_COLUMNS,
    TraceColumns,
    read_cluster_trace,
)

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

GOOGLE_STYLE = """\
time,user
3000000,alice
0,bob
1000000,alice
2000000,carol
4000000,bob
"""


class TestAdapter:
    def test_maps_entities_round_robin_by_first_appearance(self):
        trace = read_cluster_trace(
            GOOGLE_STYLE.splitlines(), ("app-00", "app-01"), time_scale=1e-6
        )
        # Time order: bob(0), alice(1s), carol(2s), alice(3s), bob(4s).
        # First appearances: bob -> app-00, alice -> app-01, carol -> app-00.
        by_app = trace.per_app()
        assert [e.time for e in by_app["app-00"]] == [0.0, 2.0, 4.0]
        assert [e.time for e in by_app["app-01"]] == [1.0, 3.0]

    def test_timeline_shifted_and_scaled(self):
        trace = read_cluster_trace(
            GOOGLE_STYLE.splitlines(), ("app-00",), time_scale=1e-6
        )
        assert trace.events[0].time == 0.0
        assert trace.horizon == pytest.approx(4.0)

    def test_job_indices_contiguous_per_app(self):
        trace = read_cluster_trace(
            GOOGLE_STYLE.splitlines(), ("app-00", "app-01"), time_scale=1e-6
        )
        for events in trace.per_app().values():
            assert [e.job_index for e in events] == list(range(len(events)))

    def test_max_jobs_truncates_in_time_order(self):
        trace = read_cluster_trace(
            GOOGLE_STYLE.splitlines(), ("app-00",), time_scale=1e-6, max_jobs=3
        )
        assert len(trace) == 3
        assert trace.horizon == pytest.approx(2.0)

    def test_max_jobs_per_app_caps_each_bucket(self):
        trace = read_cluster_trace(
            GOOGLE_STYLE.splitlines(),
            ("app-00", "app-01"),
            time_scale=1e-6,
            max_jobs_per_app=1,
        )
        counts = {app: len(ev) for app, ev in trace.per_app().items()}
        assert counts == {"app-00": 1, "app-01": 1}

    def test_alibaba_columns(self):
        text = "start_time,job_name\n100,j_1\n50,j_2\n"
        trace = read_cluster_trace(
            text.splitlines(), ("app-00",), columns=ALIBABA_COLUMNS
        )
        assert [e.time for e in trace] == [0.0, 50.0]

    def test_fixture_file_loads(self):
        trace = read_cluster_trace(
            FIXTURES / "replay_sample.csv",
            ("app-00", "app-01"),
            columns=GOOGLE_COLUMNS,
            time_scale=1e-7,
        )
        assert len(trace) == 16
        assert trace.events[0].time == 0.0


class TestStrictness:
    def test_missing_columns(self):
        with pytest.raises(ConfigurationError, match="missing columns"):
            read_cluster_trace("when,who\n1,a\n".splitlines(), ("app-00",))

    def test_no_header(self):
        with pytest.raises(ConfigurationError):
            read_cluster_trace([], ("app-00",))

    def test_bad_timestamp_has_line_number(self):
        text = "time,user\n1,a\nsoon,b\n"
        with pytest.raises(ConfigurationError, match="line 3"):
            read_cluster_trace(text.splitlines(), ("app-00",))

    def test_negative_timestamp(self):
        with pytest.raises(ConfigurationError, match="negative"):
            read_cluster_trace("time,user\n-5,a\n".splitlines(), ("app-00",))

    def test_empty_entity(self):
        with pytest.raises(ConfigurationError, match="missing time/entity"):
            read_cluster_trace("time,user\n1, \n".splitlines(), ("app-00",))

    def test_no_rows(self):
        with pytest.raises(ConfigurationError, match="no rows"):
            read_cluster_trace(["time,user"], ("app-00",))

    def test_bad_params(self):
        lines = GOOGLE_STYLE.splitlines()
        with pytest.raises(ConfigurationError):
            read_cluster_trace(lines, ())
        with pytest.raises(ConfigurationError):
            read_cluster_trace(lines, ("a", "a"))
        with pytest.raises(ConfigurationError):
            read_cluster_trace(lines, ("a",), time_scale=0.0)
        with pytest.raises(ConfigurationError):
            read_cluster_trace(lines, ("a",), max_jobs=0)
        with pytest.raises(ConfigurationError):
            read_cluster_trace(lines, ("a",), max_jobs_per_app=0)

    def test_custom_columns(self):
        text = "ts,tenant\n7,t1\n"
        trace = read_cluster_trace(
            text.splitlines(),
            ("app-00",),
            columns=TraceColumns(time="ts", entity="tenant"),
        )
        assert len(trace) == 1
