"""Task construction and runtime-field derived metrics."""

import pytest

from repro.hdfs.blocks import Block
from repro.workload.task import Task, TaskKind


def a_block():
    return Block("b-0", path="/f", index=0, size=10.0)


def input_task(**kw):
    defaults = dict(
        job_id="j-0", app_id="a-0", stage_index=0, kind=TaskKind.INPUT,
        cpu_time=1.0, block=a_block(),
    )
    defaults.update(kw)
    return Task("t-0", **defaults)


class TestConstruction:
    def test_input_task(self):
        t = input_task()
        assert t.is_input
        assert t.block is not None

    def test_shuffle_task(self):
        t = Task(
            "t-1", job_id="j", app_id="a", stage_index=1,
            kind=TaskKind.SHUFFLE, cpu_time=1.0, shuffle_bytes=100.0,
        )
        assert not t.is_input
        assert t.shuffle_bytes == 100.0

    def test_input_requires_block(self):
        with pytest.raises(ValueError):
            input_task(block=None)

    def test_shuffle_rejects_block(self):
        with pytest.raises(ValueError):
            Task(
                "t", job_id="j", app_id="a", stage_index=1,
                kind=TaskKind.SHUFFLE, cpu_time=1.0, block=a_block(),
            )

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            input_task(cpu_time=-1.0)

    def test_negative_shuffle_rejected(self):
        with pytest.raises(ValueError):
            Task(
                "t", job_id="j", app_id="a", stage_index=1,
                kind=TaskKind.SHUFFLE, cpu_time=1.0, shuffle_bytes=-1.0,
            )


class TestRuntimeMetrics:
    def test_duration(self):
        t = input_task()
        assert t.duration is None
        t.started_at, t.finished_at = 2.0, 5.5
        assert t.duration == pytest.approx(3.5)

    def test_scheduler_delay(self):
        t = input_task()
        assert t.scheduler_delay is None
        t.submitted_at, t.started_at = 1.0, 4.0
        assert t.scheduler_delay == pytest.approx(3.0)

    def test_finished_flag(self):
        t = input_task()
        assert not t.finished
        t.finished_at = 1.0
        assert t.finished

    def test_reset_runtime(self):
        t = input_task()
        t.submitted_at = t.started_at = t.finished_at = 1.0
        t.executor_id, t.node_id, t.was_local, t.read_time = "e", "n", True, 0.1
        t.reset_runtime()
        assert t.submitted_at is None
        assert t.started_at is None
        assert t.finished_at is None
        assert t.executor_id is None
        assert t.was_local is None
        assert t.read_time is None
