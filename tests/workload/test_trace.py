"""Submission traces: the common schedule of §VI-A."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workload.trace import SubmissionEvent, SubmissionTrace, common_schedule


def test_events_sorted_by_time():
    trace = SubmissionTrace(
        [
            SubmissionEvent(5.0, "b", 0),
            SubmissionEvent(1.0, "a", 0),
            SubmissionEvent(3.0, "a", 1),
        ]
    )
    assert [e.time for e in trace] == [1.0, 3.0, 5.0]


def test_negative_time_rejected():
    with pytest.raises(ConfigurationError):
        SubmissionTrace([SubmissionEvent(-1.0, "a", 0)])


def test_horizon():
    trace = SubmissionTrace([SubmissionEvent(2.0, "a", 0), SubmissionEvent(9.0, "a", 1)])
    assert trace.horizon == 9.0
    assert SubmissionTrace([]).horizon == 0.0


def test_per_app_grouping():
    trace = common_schedule(["a", "b"], 5, np.random.default_rng(0))
    groups = trace.per_app()
    assert set(groups) == {"a", "b"}
    assert len(groups["a"]) == 5
    for events in groups.values():
        times = [e.time for e in events]
        assert times == sorted(times)


def test_common_schedule_counts():
    trace = common_schedule(["a", "b", "c", "d"], 30, np.random.default_rng(1))
    assert len(trace) == 120


def test_job_indices_are_in_arrival_order_per_app():
    trace = common_schedule(["a"], 10, np.random.default_rng(2))
    indices = [e.job_index for e in trace]
    assert indices == list(range(10))


def test_mean_interarrival_roughly_honoured():
    rng = np.random.default_rng(3)
    trace = common_schedule(["a"], 2000, rng, mean_interarrival=14.0)
    times = np.array([e.time for e in trace])
    gaps = np.diff(np.concatenate([[0.0], times]))
    assert abs(gaps.mean() - 14.0) / 14.0 < 0.1


def test_same_seed_same_trace():
    t1 = common_schedule(["a", "b"], 10, np.random.default_rng(9))
    t2 = common_schedule(["a", "b"], 10, np.random.default_rng(9))
    assert [(e.time, e.app_id, e.job_index) for e in t1] == [
        (e.time, e.app_id, e.job_index) for e in t2
    ]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"jobs_per_app": 0},
        {"mean_interarrival": 0.0},
    ],
)
def test_invalid_parameters(kwargs):
    base = dict(app_ids=["a"], jobs_per_app=5, rng=np.random.default_rng(0))
    base.update(kwargs)
    with pytest.raises(ConfigurationError):
        common_schedule(**base)


def test_duplicate_app_ids_rejected():
    with pytest.raises(ConfigurationError):
        common_schedule(["a", "a"], 5, np.random.default_rng(0))
