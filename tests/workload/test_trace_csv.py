"""SubmissionTrace CSV round-trip and replay-invariant validation."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workload.trace import SubmissionEvent, SubmissionTrace, common_schedule


def make_trace() -> SubmissionTrace:
    return SubmissionTrace(
        [
            SubmissionEvent(0.0, "app-00", 0),
            SubmissionEvent(1.5, "app-01", 0),
            SubmissionEvent(3.25, "app-00", 1),
            SubmissionEvent(7.125, "app-01", 1),
        ]
    )


class TestCsvRoundTrip:
    def test_round_trip_is_lossless(self):
        trace = make_trace()
        back = SubmissionTrace.from_csv(trace.to_csv())
        assert back.to_records() == trace.to_records()

    def test_round_trip_preserves_exact_floats(self):
        # repr() serialisation must survive ugly floats bit-for-bit.
        rng = np.random.default_rng(4)
        trace = common_schedule(("app-00", "app-01"), 20, rng)
        back = SubmissionTrace.from_csv(trace.to_csv())
        assert [e.time for e in back] == [e.time for e in trace]

    def test_csv_shape(self):
        text = make_trace().to_csv()
        lines = text.splitlines()
        assert lines[0] == "time,app_id,job_index"
        assert len(lines) == 1 + 4

    def test_accepts_iterable_of_lines(self):
        trace = make_trace()
        back = SubmissionTrace.from_csv(iter(trace.to_csv().splitlines()))
        assert back.to_records() == trace.to_records()


class TestCsvValidation:
    def test_bad_header_rejected(self):
        with pytest.raises(ConfigurationError, match="header"):
            SubmissionTrace.from_csv("when,who,what\n1,a,0\n")

    def test_malformed_row_reported_with_line_number(self):
        text = "time,app_id,job_index\n0.0,app-00,0\nnot-a-number,app-00,1\n"
        with pytest.raises(ConfigurationError, match="line 3"):
            SubmissionTrace.from_csv(text)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="negative"):
            SubmissionTrace.from_csv("time,app_id,job_index\n-1.0,app-00,0\n")

    def test_noncontiguous_indices_rejected(self):
        # app-00 submits job 0 then job 2: a hole in the sequence.
        text = "time,app_id,job_index\n0.0,app-00,0\n5.0,app-00,2\n"
        with pytest.raises(ConfigurationError, match="contiguous"):
            SubmissionTrace.from_csv(text)

    def test_time_order_must_match_index_order(self):
        # Job 1 submitted before job 0: indices not monotone with time.
        text = "time,app_id,job_index\n0.0,app-00,1\n5.0,app-00,0\n"
        with pytest.raises(ConfigurationError, match="monotone"):
            SubmissionTrace.from_csv(text)

    def test_validate_passes_generated_schedules(self):
        rng = np.random.default_rng(0)
        trace = common_schedule(("a", "b", "c"), 10, rng)
        assert trace.validate() is trace
