"""SubmissionTrace record round-trips."""

import json

import numpy as np

from repro.workload.trace import SubmissionTrace, common_schedule


def test_to_records_is_json_serialisable():
    trace = common_schedule(["a", "b"], 5, np.random.default_rng(0))
    text = json.dumps(trace.to_records())
    assert '"app_id"' in text


def test_round_trip_preserves_events():
    trace = common_schedule(["a", "b"], 5, np.random.default_rng(0))
    rebuilt = SubmissionTrace.from_records(trace.to_records())
    assert [(e.time, e.app_id, e.job_index) for e in rebuilt] == [
        (e.time, e.app_id, e.job_index) for e in trace
    ]


def test_from_records_sorts():
    records = [
        {"time": 5.0, "app_id": "a", "job_index": 1},
        {"time": 1.0, "app_id": "a", "job_index": 0},
    ]
    trace = SubmissionTrace.from_records(records)
    assert [e.time for e in trace] == [1.0, 5.0]
